// Package graph provides the directed-graph algorithms shared by the
// automata and fairness packages: Tarjan's strongly-connected-components
// decomposition (iterative, so deep systems do not overflow the stack),
// reachability, bottom-SCC analysis, and shortest-path extraction.
package graph

import (
	"context"

	"relive/internal/interrupt"
)

// Succ enumerates the successor vertices of v. Implementations may yield
// duplicates; the algorithms tolerate them.
type Succ func(v int) []int

// CSR is a compressed-sparse-row adjacency list: the successors of
// vertex v are Dst[Off[v]:Off[v+1]]. It is the compiled form the
// automata packages hand to the graph algorithms so the inner loops walk
// flat arrays instead of calling an allocating Succ closure per vertex.
// Duplicate edges are tolerated.
type CSR struct {
	Off []int32
	Dst []int32
}

// NumVertices returns the number of vertices of the graph.
func (g CSR) NumVertices() int { return len(g.Off) - 1 }

// Succ returns the successor slice of v (shared, do not mutate).
func (g CSR) Succ(v int) []int32 { return g.Dst[g.Off[v]:g.Off[v+1]] }

// Reverse returns the reversed graph, built in O(V+E).
func (g CSR) Reverse() CSR {
	n := g.NumVertices()
	off := make([]int32, n+1)
	for _, w := range g.Dst {
		off[w+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	dst := make([]int32, len(g.Dst))
	next := make([]int32, n)
	copy(next, off[:n])
	for v := 0; v < n; v++ {
		for _, w := range g.Succ(v) {
			dst[next[w]] = int32(v)
			next[w]++
		}
	}
	return CSR{Off: off, Dst: dst}
}

// SCCs returns the strongly connected components of the graph with
// vertices 0..n-1 in reverse topological order (every edge leaving a
// component points to a component earlier in the returned slice).
// Components are Tarjan components: singletons without self-loops are
// "trivial" components.
func SCCs(n int, succ Succ) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		comps   [][]int
		counter int
	)

	type frame struct {
		v    int
		succ []int
		next int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root}}
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.succ == nil {
				index[f.v] = counter
				low[f.v] = counter
				counter++
				stack = append(stack, f.v)
				onStack[f.v] = true
				f.succ = succ(f.v)
			}
			advanced := false
			for f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				if index[w] == unvisited {
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All successors done: pop.
			if low[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, comp)
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
		}
	}
	return comps
}

// SCCsCSR is SCCs over a compiled CSR adjacency: the same iterative
// Tarjan, but the successor scan walks a flat slice span per vertex with
// no per-vertex allocation.
func SCCsCSR(g CSR) [][]int {
	const unvisited = -1
	n := g.NumVertices()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		comps   [][]int
		counter int
	)

	type frame struct {
		v    int
		next int32
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callStack := []frame{{v: root, next: -1}}
		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.next < 0 {
				index[f.v] = counter
				low[f.v] = counter
				counter++
				stack = append(stack, f.v)
				onStack[f.v] = true
				f.next = 0
			}
			succ := g.Succ(f.v)
			advanced := false
			for int(f.next) < len(succ) {
				w := int(succ[f.next])
				f.next++
				if index[w] == unvisited {
					callStack = append(callStack, frame{v: w, next: -1})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				comps = append(comps, comp)
			}
			v := f.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
		}
	}
	return comps
}

// ComponentOf returns, for each vertex, the index of its component in the
// slice returned by SCCs.
func ComponentOf(n int, comps [][]int) []int {
	comp := make([]int, n)
	for ci, c := range comps {
		for _, v := range c {
			comp[v] = ci
		}
	}
	return comp
}

// IsTrivialSCC reports whether comp is a single vertex without a
// self-loop, i.e. carries no cycle.
func IsTrivialSCC(comp []int, succ Succ) bool {
	if len(comp) > 1 {
		return false
	}
	v := comp[0]
	for _, w := range succ(v) {
		if w == v {
			return false
		}
	}
	return true
}

// Reachable returns the set of vertices reachable from the given sources
// (including the sources themselves).
func Reachable(n int, sources []int, succ Succ) []bool {
	seen, _ := ReachableCtx(nil, n, sources, succ)
	return seen
}

// ReachableCtx is Reachable with a cooperative cancellation checkpoint
// inside the BFS loop: when ctx is cancelled the expansion stops and
// the context's error is returned. A nil ctx never cancels.
func ReachableCtx(ctx context.Context, n int, sources []int, succ Succ) ([]bool, error) {
	seen := make([]bool, n)
	queue := make([]int, 0, len(sources))
	for _, s := range sources {
		if s >= 0 && s < n && !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	var tick interrupt.Tick
	for qi := 0; qi < len(queue); qi++ {
		if err := tick.Poll(ctx); err != nil {
			return nil, err
		}
		for _, w := range succ(queue[qi]) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen, nil
}

// IsTrivialSCCCSR is IsTrivialSCC over a CSR adjacency.
func IsTrivialSCCCSR(comp []int, g CSR) bool {
	if len(comp) > 1 {
		return false
	}
	v := comp[0]
	for _, w := range g.Succ(v) {
		if int(w) == v {
			return false
		}
	}
	return true
}

// ReachableCSR is Reachable over a CSR adjacency.
func ReachableCSR(g CSR, sources []int) []bool {
	seen, _ := ReachableCSRCtx(nil, g, sources)
	return seen
}

// ReachableCSRCtx is ReachableCSR with a cooperative cancellation
// checkpoint inside the BFS loop. A nil ctx never cancels.
func ReachableCSRCtx(ctx context.Context, g CSR, sources []int) ([]bool, error) {
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	for _, s := range sources {
		if s >= 0 && s < n && !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	var tick interrupt.Tick
	for qi := 0; qi < len(queue); qi++ {
		if err := tick.Poll(ctx); err != nil {
			return nil, err
		}
		for _, w := range g.Succ(queue[qi]) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, int(w))
			}
		}
	}
	return seen, nil
}

// CoReachableCSR is CoReachable over a CSR adjacency: one O(V+E) reverse
// pass instead of per-vertex Succ calls.
func CoReachableCSR(g CSR, targets []bool) []bool {
	rev := g.Reverse()
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if targets[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		for _, w := range rev.Succ(queue[qi]) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, int(w))
			}
		}
	}
	return seen
}

// CoReachable returns the set of vertices from which some target vertex is
// reachable, computed on the reversed graph.
func CoReachable(n int, targets []bool, succ Succ) []bool {
	// Build reverse adjacency once; succ may be expensive.
	rev := make([][]int, n)
	for v := 0; v < n; v++ {
		for _, w := range succ(v) {
			rev[w] = append(rev[w], v)
		}
	}
	seen := make([]bool, n)
	var queue []int
	for v := 0; v < n; v++ {
		if targets[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		for _, w := range rev[queue[qi]] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// BottomSCCs returns the components (as produced by SCCs) out of which no
// edge leaves, restricted to components reachable from sources. In a
// finite system whose every state has a successor, the strongly fair runs
// are exactly the runs whose infinity set is such a bottom component.
func BottomSCCs(n int, sources []int, succ Succ) [][]int {
	comps := SCCs(n, succ)
	compOf := ComponentOf(n, comps)
	reach := Reachable(n, sources, succ)
	var bottoms [][]int
	for ci, c := range comps {
		if !reach[c[0]] {
			continue
		}
		isBottom := true
		for _, v := range c {
			for _, w := range succ(v) {
				if compOf[w] != ci {
					isBottom = false
					break
				}
			}
			if !isBottom {
				break
			}
		}
		if isBottom {
			bottoms = append(bottoms, c)
		}
	}
	return bottoms
}

// ShortestPath returns a shortest path (as a vertex sequence, inclusive of
// both endpoints) from any source to any vertex satisfying goal, or nil
// when no such vertex is reachable.
func ShortestPath(n int, sources []int, succ Succ, goal func(v int) bool) []int {
	parent := make([]int, n)
	seen := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	var queue []int
	for _, s := range sources {
		if s < 0 || s >= n || seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue, s)
		if goal(s) {
			return []int{s}
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, w := range succ(v) {
			if seen[w] {
				continue
			}
			seen[w] = true
			parent[w] = v
			if goal(w) {
				var path []int
				for u := w; u != -1; u = parent[u] {
					path = append(path, u)
				}
				reverse(path)
				return path
			}
			queue = append(queue, w)
		}
	}
	return nil
}

func reverse(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}
