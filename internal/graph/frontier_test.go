package graph

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// bfsOverGrid runs ParallelFrontier over an implicit w×h grid graph
// (successors: right and down) and returns the visit order, which must
// match the serial BFS discovery order for every worker count.
func bfsOverGrid(t *testing.T, w, h, workers int) []int {
	t.Helper()
	var order []int
	seen := map[int]bool{0: true}
	expand := func(cell int, buf []int) []int {
		x, y := cell%w, cell/w
		if x+1 < w {
			buf = append(buf, cell+1)
		}
		if y+1 < h {
			buf = append(buf, cell+w)
		}
		return buf
	}
	absorb := func(cell int, succs []int, push func(int)) error {
		order = append(order, cell)
		for _, s := range succs {
			if !seen[s] {
				seen[s] = true
				push(s)
			}
		}
		return nil
	}
	if err := ParallelFrontier([]int{0}, workers, expand, absorb); err != nil {
		t.Fatal(err)
	}
	return order
}

func TestParallelFrontierDeterministicOrder(t *testing.T) {
	want := bfsOverGrid(t, 7, 5, 1)
	if len(want) != 35 {
		t.Fatalf("serial BFS visited %d cells, want 35", len(want))
	}
	for _, workers := range []int{2, 3, 4, 8} {
		for run := 0; run < 10; run++ {
			got := bfsOverGrid(t, 7, 5, workers)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d run %d: visit order diverges from serial\nwant %v\ngot  %v",
					workers, run, want, got)
			}
		}
	}
}

func TestParallelFrontierAbortsOnError(t *testing.T) {
	calls := 0
	expand := func(n int, buf []int) []int {
		if n < 100 {
			return append(buf, n+1)
		}
		return buf
	}
	absorb := func(n int, succs []int, push func(int)) error {
		calls++
		if n == 5 {
			return fmt.Errorf("stop at %d", n)
		}
		for _, s := range succs {
			push(s)
		}
		return nil
	}
	err := ParallelFrontier([]int{0}, 4, expand, absorb)
	if err == nil || err.Error() != "stop at 5" {
		t.Fatalf("want 'stop at 5' error, got %v", err)
	}
	if calls != 6 { // absorbed 0..5, then aborted
		t.Fatalf("absorb ran %d times, want 6", calls)
	}
}

func TestVisitedShards(t *testing.T) {
	v := NewVisitedShards(FNV1a)
	for i := 0; i < 1000; i++ {
		v.Put(fmt.Sprintf("key-%d", i), int32(i))
	}
	if v.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", v.Len())
	}
	for i := 0; i < 1000; i++ {
		got, ok := v.Get(fmt.Sprintf("key-%d", i))
		if !ok || got != int32(i) {
			t.Fatalf("Get(key-%d) = %d,%v", i, got, ok)
		}
	}
	if _, ok := v.Get("missing"); ok {
		t.Fatal("Get on missing key reported present")
	}
}

// TestVisitedShardsConcurrentReaders exercises the expand-phase access
// pattern under the race detector: many goroutines reading a frozen
// snapshot concurrently.
func TestVisitedShardsConcurrentReaders(t *testing.T) {
	v := NewVisitedShards(Mix64)
	for i := uint64(0); i < 500; i++ {
		v.Put(i, int32(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 500; i++ {
				if got, ok := v.Get(i); !ok || got != int32(i) {
					t.Errorf("Get(%d) = %d,%v", i, got, ok)
				}
			}
		}()
	}
	wg.Wait()
}
