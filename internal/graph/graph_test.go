package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func adj(edges map[int][]int) Succ {
	return func(v int) []int { return edges[v] }
}

func TestSCCsSimpleCycle(t *testing.T) {
	succ := adj(map[int][]int{0: {1}, 1: {2}, 2: {0}})
	comps := SCCs(3, succ)
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("SCCs = %v, want one component of size 3", comps)
	}
}

func TestSCCsChain(t *testing.T) {
	succ := adj(map[int][]int{0: {1}, 1: {2}})
	comps := SCCs(3, succ)
	if len(comps) != 3 {
		t.Fatalf("SCCs = %v, want three singletons", comps)
	}
	// Reverse topological order: sinks first.
	if comps[0][0] != 2 || comps[2][0] != 0 {
		t.Errorf("order not reverse-topological: %v", comps)
	}
}

func TestSCCsTwoComponents(t *testing.T) {
	// 0<->1 -> 2<->3, plus a trivial isolated 4.
	succ := adj(map[int][]int{0: {1}, 1: {0, 2}, 2: {3}, 3: {2}})
	comps := SCCs(5, succ)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
	compOf := ComponentOf(5, comps)
	if compOf[0] != compOf[1] || compOf[2] != compOf[3] || compOf[0] == compOf[2] {
		t.Errorf("ComponentOf wrong: %v", compOf)
	}
}

func TestIsTrivialSCC(t *testing.T) {
	succ := adj(map[int][]int{0: {0}, 1: {0}})
	if IsTrivialSCC([]int{0}, succ) {
		t.Error("self-loop state reported trivial")
	}
	if !IsTrivialSCC([]int{1}, succ) {
		t.Error("loop-free singleton reported nontrivial")
	}
	if IsTrivialSCC([]int{0, 1}, succ) {
		t.Error("multi-state component reported trivial")
	}
}

func TestReachableAndCoReachable(t *testing.T) {
	succ := adj(map[int][]int{0: {1}, 1: {2}, 3: {1}})
	r := Reachable(4, []int{0}, succ)
	want := []bool{true, true, true, false}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Reachable[%d] = %v, want %v", i, r[i], want[i])
		}
	}
	co := CoReachable(4, []bool{false, false, true, false}, succ)
	wantCo := []bool{true, true, true, true}
	for i := range wantCo {
		if co[i] != wantCo[i] {
			t.Errorf("CoReachable[%d] = %v, want %v", i, co[i], wantCo[i])
		}
	}
}

func TestBottomSCCs(t *testing.T) {
	// 0 -> {1<->2} (bottom), 0 -> 3 (bottom self-loop), 4 unreachable cycle.
	succ := adj(map[int][]int{0: {1, 3}, 1: {2}, 2: {1}, 3: {3}, 4: {4}})
	bottoms := BottomSCCs(5, []int{0}, succ)
	if len(bottoms) != 2 {
		t.Fatalf("bottoms = %v, want 2 components", bottoms)
	}
	var all []int
	for _, b := range bottoms {
		all = append(all, b...)
	}
	sort.Ints(all)
	want := []int{1, 2, 3}
	if len(all) != len(want) {
		t.Fatalf("bottom states = %v, want %v", all, want)
	}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("bottom states = %v, want %v", all, want)
		}
	}
}

func TestShortestPath(t *testing.T) {
	succ := adj(map[int][]int{0: {1, 2}, 1: {3}, 2: {3}, 3: {4}})
	p := ShortestPath(5, []int{0}, succ, func(v int) bool { return v == 4 })
	if len(p) != 4 || p[0] != 0 || p[3] != 4 {
		t.Errorf("path = %v", p)
	}
	if p := ShortestPath(5, []int{1}, succ, func(v int) bool { return v == 2 }); p != nil {
		t.Errorf("expected nil path, got %v", p)
	}
	if p := ShortestPath(5, []int{3}, succ, func(v int) bool { return v == 3 }); len(p) != 1 {
		t.Errorf("source-is-goal path = %v, want [3]", p)
	}
}

// TestSCCsRandomAgainstNaive cross-checks Tarjan against a naive
// O(n·(n+m)) mutual-reachability computation on random graphs.
func TestSCCsRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(14)
		edges := map[int][]int{}
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			edges[u] = append(edges[u], v)
		}
		succ := adj(edges)

		reachFrom := make([][]bool, n)
		for v := 0; v < n; v++ {
			reachFrom[v] = Reachable(n, []int{v}, succ)
		}
		sameComp := func(u, v int) bool { return reachFrom[u][v] && reachFrom[v][u] }

		comps := SCCs(n, succ)
		compOf := ComponentOf(n, comps)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if (compOf[u] == compOf[v]) != sameComp(u, v) {
					t.Fatalf("trial %d: states %d,%d: tarjan %v, naive %v",
						trial, u, v, compOf[u] == compOf[v], sameComp(u, v))
				}
			}
		}
		// Reverse-topological order check.
		for ci, c := range comps {
			for _, v := range c {
				for _, w := range succ(v) {
					if compOf[w] > ci {
						t.Fatalf("trial %d: edge %d->%d violates reverse topo order", trial, v, w)
					}
				}
			}
		}
	}
}
