package graph

import (
	"sync"
	"sync/atomic"
)

// ParallelFrontier runs a level-synchronized ("frontier-parallel")
// breadth-first expansion with deterministic merge order. It alternates
// two phases per level:
//
//   - expand: workers claim frontier items off an atomic cursor and
//     compute each item's successor records into per-worker buffers
//     (one append-only arena per worker, so the hot loop shares no
//     memory with other workers). expand must be a pure function of the
//     item: it may read shared immutable structures but not write them.
//   - absorb: the merge runs serially over the frontier in item order
//     and sees each item's successor records exactly as expand emitted
//     them. absorb does the interning/numbering and pushes newly
//     discovered items onto the next frontier.
//
// Because every level of the frontier is a contiguous run of the
// breadth-first queue, visiting level k's successors in (item order,
// emission order) reproduces exactly the discovery order of the serial
// loop `for qi := 0; qi < len(queue); qi++`. Callers that expand in a
// deterministic order therefore get bit-identical numbering to a serial
// BFS, regardless of the worker count or goroutine scheduling.
//
// A non-nil error from absorb aborts the whole expansion. workers <= 1
// (or a single-item frontier) expands serially on the calling
// goroutine, still level by level.
func ParallelFrontier[T, S any](roots []T, workers int,
	expand func(item T, buf []S) []S,
	absorb func(item T, succs []S, push func(T)) error,
) error {
	frontier := append([]T(nil), roots...)
	var next []T
	push := func(t T) { next = append(next, t) }
	if workers < 1 {
		workers = 1
	}
	arenas := make([][]S, workers)
	var serialBuf []S
	for len(frontier) > 0 {
		next = next[:0]
		if workers == 1 || len(frontier) == 1 {
			for _, it := range frontier {
				serialBuf = expand(it, serialBuf[:0])
				if err := absorb(it, serialBuf, push); err != nil {
					return err
				}
			}
		} else {
			// expand phase: workers claim items; bounds[i] records the
			// slice of its owner's arena holding item i's successors.
			owner := make([]int32, len(frontier))
			bounds := make([][2]int32, len(frontier))
			var cursor atomic.Int64
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					arena := arenas[w][:0]
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(frontier) {
							break
						}
						lo := len(arena)
						arena = expand(frontier[i], arena)
						owner[i] = int32(w)
						bounds[i] = [2]int32{int32(lo), int32(len(arena))}
					}
					arenas[w] = arena
				}(w)
			}
			wg.Wait()
			// absorb phase: serial, in frontier order.
			for i, it := range frontier {
				arena := arenas[owner[i]]
				if err := absorb(it, arena[bounds[i][0]:bounds[i][1]], push); err != nil {
					return err
				}
			}
		}
		frontier, next = next, frontier
	}
	return nil
}

// VisitedShards is a sharded visited set for frontier-parallel
// construction: lookups hash to one of 64 shards, each with its own
// lock and map, so concurrent expand-phase readers never contend on a
// global mutex and each map stays small. The level-synchronized
// protocol writes only between expansion phases (in absorb), so during
// an expand phase readers observe a frozen snapshot — everything
// visited through the previous level.
type VisitedShards[K comparable] struct {
	hash   func(K) uint32
	shards [visitedShardCount]visitedShard[K]
}

const visitedShardCount = 64

type visitedShard[K comparable] struct {
	mu sync.RWMutex
	m  map[K]int32
}

// NewVisitedShards returns an empty sharded visited set using hash to
// pick shards. The hash need not be cryptographic, only well spread
// (see FNV1a).
func NewVisitedShards[K comparable](hash func(K) uint32) *VisitedShards[K] {
	v := &VisitedShards[K]{hash: hash}
	for i := range v.shards {
		v.shards[i].m = map[K]int32{}
	}
	return v
}

// FNV1a is the string shard hash for NewVisitedShards.
func FNV1a(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// Mix64 is a shard hash for uint64 keys (SplitMix64 finalizer).
func Mix64(key uint64) uint32 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return uint32(key)
}

// Get returns the value recorded for key, if any.
func (v *VisitedShards[K]) Get(key K) (int32, bool) {
	sh := &v.shards[v.hash(key)%visitedShardCount]
	sh.mu.RLock()
	val, ok := sh.m[key]
	sh.mu.RUnlock()
	return val, ok
}

// Put records key -> val.
func (v *VisitedShards[K]) Put(key K, val int32) {
	sh := &v.shards[v.hash(key)%visitedShardCount]
	sh.mu.Lock()
	sh.m[key] = val
	sh.mu.Unlock()
}

// Len returns the total number of recorded keys.
func (v *VisitedShards[K]) Len() int {
	n := 0
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
