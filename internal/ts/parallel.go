package ts

import (
	"fmt"
	"runtime"

	"relive/internal/alphabet"
	"relive/internal/graph"
)

// ProductParallel is the synchronous composition Product with
// frontier-parallel construction of the reachable pair space: each BFS
// level's pairs are expanded concurrently by the given number of
// workers into per-worker successor buffers, and a serial merge interns
// pairs and adds transitions in deterministic order. Unlike Product —
// whose state numbering depends on Go map iteration order and therefore
// varies run to run — ProductParallel expands symbols in interning
// order, so its output is identical for every worker count and every
// run. The composed language is the same as Product's (the systems are
// isomorphic up to state numbering); equality of behavior is pinned by
// the test suite.
//
// workers == 1 uses a single goroutine but keeps the deterministic
// symbol order; workers <= 0 means runtime.GOMAXPROCS(0).
func ProductParallel(a, b *System, workers int) (*System, error) {
	if a.initial < 0 || b.initial < 0 {
		return nil, fmt.Errorf("ts: product of systems without initial states")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ab := a.ab.Clone()
	mapB := ab.Extend(b.ab)
	sharedByName := map[alphabet.Symbol]alphabet.Symbol{} // product symbol -> b's symbol
	for _, symB := range b.ab.Symbols() {
		sharedByName[mapB[symB]] = symB
	}
	isShared := func(sym alphabet.Symbol) bool {
		_, inB := sharedByName[sym]
		_, inA := a.ab.Lookup(ab.Name(sym))
		return inB && inA
	}

	// Resolve every symbol's product image and sharedness before the
	// fan-out so workers never touch the (mutable, interning) alphabet.
	aSyms := a.ab.Symbols()
	type aCol struct {
		sym    alphabet.Symbol // product symbol
		shared bool
		symB   alphabet.Symbol // b's symbol when shared
	}
	aCols := make([]aCol, len(aSyms))
	for i, symA := range aSyms {
		sym := ab.Symbol(a.ab.Name(symA)) // same value: ab extends a's alphabet
		aCols[i] = aCol{sym: sym, shared: isShared(sym), symB: sharedByName[sym]}
	}
	bSyms := b.ab.Symbols()
	type bCol struct {
		sym    alphabet.Symbol
		shared bool
	}
	bCols := make([]bCol, len(bSyms))
	for j, symB := range bSyms {
		sym := mapB[symB]
		bCols[j] = bCol{sym: sym, shared: isShared(sym)}
	}

	type pair struct{ x, y State }
	pack := func(p pair) uint64 { return uint64(uint32(p.x))<<32 | uint64(uint32(p.y)) }
	type item struct {
		p  pair
		st State
	}
	// succ is one product move; st is the already-interned target state
	// when the expansion worker found it in the visited set (-1: not
	// visited as of the previous level).
	type succ struct {
		sym alphabet.Symbol
		p   pair
		st  int32
	}

	out := New(ab)
	seen := graph.NewVisitedShards(graph.Mix64)
	initPair := pair{a.initial, b.initial}
	init := out.AddState(a.names[initPair.x] + "|" + b.names[initPair.y])
	out.SetInitial(init)
	seen.Put(pack(initPair), int32(init))

	expand := func(it item, buf []succ) []succ {
		emit := func(sym alphabet.Symbol, p pair) []succ {
			s := succ{sym: sym, p: p, st: -1}
			if st, ok := seen.Get(pack(p)); ok {
				s.st = st
			}
			return append(buf, s)
		}
		// Moves of a: private actions of a, or shared with b able to match.
		for i, symA := range aSyms {
			ts := a.trans[it.p.x][symA]
			if len(ts) == 0 {
				continue
			}
			col := aCols[i]
			if col.shared {
				for _, tx := range ts {
					for _, ty := range b.trans[it.p.y][col.symB] {
						buf = emit(col.sym, pair{tx, ty})
					}
				}
			} else {
				for _, tx := range ts {
					buf = emit(col.sym, pair{tx, it.p.y})
				}
			}
		}
		// Private moves of b.
		for j, symB := range bSyms {
			col := bCols[j]
			if col.shared {
				continue // handled above
			}
			for _, ty := range b.trans[it.p.y][symB] {
				buf = emit(col.sym, pair{it.p.x, ty})
			}
		}
		return buf
	}
	absorb := func(it item, succs []succ, push func(item)) error {
		for _, s := range succs {
			to := State(s.st)
			if s.st < 0 {
				if st, ok := seen.Get(pack(s.p)); ok {
					to = State(st)
				} else {
					to = out.AddState(a.names[s.p.x] + "|" + b.names[s.p.y])
					seen.Put(pack(s.p), int32(to))
					push(item{p: s.p, st: to})
				}
			}
			out.AddTransition(it.st, s.sym, to)
		}
		return nil
	}
	roots := []item{{p: initPair, st: init}}
	if err := graph.ParallelFrontier(roots, workers, expand, absorb); err != nil {
		return nil, err
	}
	return out, nil
}
