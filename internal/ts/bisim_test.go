package ts

import (
	"fmt"
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/nfa"
)

func TestBisimulationQuotientMergesTwins(t *testing.T) {
	// Two states with identical behavior must merge.
	ab := alphabet.FromNames("a", "b")
	s := New(ab)
	s.AddEdge("s0", "a", "l")
	s.AddEdge("s0", "a", "r")
	s.AddEdge("l", "b", "s0")
	s.AddEdge("r", "b", "s0")
	init, _ := s.LookupState("s0")
	s.SetInitial(init)
	q, err := s.BisimulationQuotient()
	if err != nil {
		t.Fatal(err)
	}
	if q.NumStates() != 2 {
		t.Errorf("quotient has %d states, want 2", q.NumStates())
	}
	ok, err := Bisimilar(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("system not bisimilar to its quotient")
	}
}

func TestBisimulationDistinguishes(t *testing.T) {
	// Deadlock potential distinguishes: s0 -a-> live loop, t0 -a-> dead.
	ab := alphabet.FromNames("a")
	s := New(ab)
	s.AddEdge("s0", "a", "s0")
	si, _ := s.LookupState("s0")
	s.SetInitial(si)

	d := New(ab)
	d.AddEdge("t0", "a", "dead")
	di, _ := d.LookupState("t0")
	d.SetInitial(di)

	ok, err := Bisimilar(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("looping and deadlocking systems reported bisimilar")
	}
}

func TestBisimilarErrors(t *testing.T) {
	ab := alphabet.FromNames("a")
	noInit := New(ab)
	noInit.AddState("x")
	good := New(ab)
	good.AddEdge("y", "a", "y")
	gi, _ := good.LookupState("y")
	good.SetInitial(gi)
	if _, err := Bisimilar(noInit, good); err == nil {
		t.Error("Bisimilar accepted a system without initial state")
	}
	if _, err := noInit.BisimulationQuotient(); err == nil {
		t.Error("quotient accepted a system without initial state")
	}
}

// TestQuickQuotientPreservesLanguage: the quotient accepts exactly the
// same finite-path language on random systems.
func TestQuickQuotientPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	ab := alphabet.FromNames("a", "b")
	for trial := 0; trial < 60; trial++ {
		s := New(ab)
		n := 1 + rng.Intn(7)
		for i := 0; i < n; i++ {
			s.AddState(fmt.Sprintf("s%d", i))
		}
		for i := 0; i < n; i++ {
			for _, sym := range ab.Symbols() {
				for k := 0; k < 2; k++ {
					if rng.Float64() < 0.45 {
						from, _ := s.LookupState(fmt.Sprintf("s%d", i))
						to, _ := s.LookupState(fmt.Sprintf("s%d", rng.Intn(n)))
						s.AddTransition(from, sym, to)
					}
				}
			}
		}
		init, _ := s.LookupState("s0")
		s.SetInitial(init)

		q, err := s.BisimulationQuotient()
		if err != nil {
			t.Fatal(err)
		}
		if q.NumStates() > s.NumStates() {
			t.Fatalf("trial %d: quotient grew: %d > %d", trial, q.NumStates(), s.NumStates())
		}
		a1, err := s.NFA()
		if err != nil {
			t.Fatal(err)
		}
		a2, err := q.NFA()
		if err != nil {
			t.Fatal(err)
		}
		if eq, w := nfa.LanguageEqual(a1, a2); !eq {
			t.Fatalf("trial %d: quotient changed the language, witness %s\n%s",
				trial, w.String(ab), s.FormatString())
		}
		bisim, err := Bisimilar(s, q)
		if err != nil {
			t.Fatal(err)
		}
		if !bisim {
			t.Fatalf("trial %d: system not bisimilar to quotient", trial)
		}
	}
}

// TestQuickBisimilarReflexiveUnderRenaming: a system is bisimilar to a
// state-renamed copy of itself.
func TestQuickBisimilarRenamedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	ab := alphabet.FromNames("a", "b")
	for trial := 0; trial < 30; trial++ {
		s := New(ab)
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			s.AddState(fmt.Sprintf("s%d", i))
		}
		for i := 0; i < n; i++ {
			for _, sym := range ab.Symbols() {
				if rng.Float64() < 0.6 {
					from, _ := s.LookupState(fmt.Sprintf("s%d", i))
					to, _ := s.LookupState(fmt.Sprintf("s%d", rng.Intn(n)))
					s.AddTransition(from, sym, to)
				}
			}
		}
		init, _ := s.LookupState("s0")
		s.SetInitial(init)

		copySys := New(ab)
		for i := 0; i < n; i++ {
			copySys.AddState(fmt.Sprintf("t%d", i))
		}
		for _, e := range s.Edges() {
			from, _ := copySys.LookupState(fmt.Sprintf("t%d", e.From))
			to, _ := copySys.LookupState(fmt.Sprintf("t%d", e.To))
			copySys.AddTransition(from, e.Sym, to)
		}
		ci, _ := copySys.LookupState("t0")
		copySys.SetInitial(ci)

		ok, err := Bisimilar(s, copySys)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: system not bisimilar to its renamed copy", trial)
		}
	}
}
