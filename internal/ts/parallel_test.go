package ts

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"relive/internal/alphabet"
)

// namedEdges renders every transition by state name and action name,
// sorted — a representation invariant under state renumbering.
func namedEdges(s *System) []string {
	var out []string
	for _, e := range s.Edges() {
		out = append(out, fmt.Sprintf("%s -%s-> %s",
			s.StateName(e.From), s.Alphabet().Name(e.Sym), s.StateName(e.To)))
	}
	sort.Strings(out)
	return out
}

func productOperands(t *testing.T) (*System, *System) {
	t.Helper()
	parse := func(text string) *System {
		sys, err := ParseString(text)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	left := parse(`
init idle
idle req busy
busy work done
done res idle
busy sync busy
`)
	right := parse(`
init wait
wait sync go
go step wait
go res go
`)
	return left, right
}

func TestProductParallelMatchesSerialBehavior(t *testing.T) {
	a, b := productOperands(t)
	serial, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := ProductParallel(a, b, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.NumStates() != serial.NumStates() {
			t.Errorf("workers=%d: %d states, serial has %d", workers, par.NumStates(), serial.NumStates())
		}
		if par.StateName(par.Initial()) != serial.StateName(serial.Initial()) {
			t.Errorf("workers=%d: initial %q, serial has %q",
				workers, par.StateName(par.Initial()), serial.StateName(serial.Initial()))
		}
		if !reflect.DeepEqual(namedEdges(serial), namedEdges(par)) {
			t.Errorf("workers=%d: named edge set differs from serial Product", workers)
		}
	}
}

// TestProductParallelDeterministic pins the stronger guarantee the
// parallel construction makes and the serial one does not: identical
// state numbering for every run and every worker count.
func TestProductParallelDeterministic(t *testing.T) {
	a, b := productOperands(t)
	ref, err := ProductParallel(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		for _, workers := range []int{2, 4, 8} {
			got, err := ProductParallel(a, b, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.NumStates() != ref.NumStates() {
				t.Fatalf("run %d workers=%d: %d states, want %d", run, workers, got.NumStates(), ref.NumStates())
			}
			for st := 0; st < ref.NumStates(); st++ {
				if ref.StateName(State(st)) != got.StateName(State(st)) {
					t.Fatalf("run %d workers=%d: state %d named %q, want %q",
						run, workers, st, got.StateName(State(st)), ref.StateName(State(st)))
				}
			}
			if got.Initial() != ref.Initial() {
				t.Fatalf("run %d workers=%d: initial %d, want %d", run, workers, got.Initial(), ref.Initial())
			}
			if !reflect.DeepEqual(ref.Edges(), got.Edges()) {
				t.Fatalf("run %d workers=%d: edges differ between identical invocations", run, workers)
			}
		}
	}
}

func TestProductParallelNoInitial(t *testing.T) {
	a := New(alphabet.New())
	b := New(alphabet.New())
	if _, err := ProductParallel(a, b, 2); err == nil {
		t.Fatal("expected error for systems without initial states")
	}
}
