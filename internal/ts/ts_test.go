package ts

import (
	"strings"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/word"
)

// loopSystem returns a two-state system: s0 -a-> s1 -b-> s0.
func loopSystem() *System {
	ab := alphabet.FromNames("a", "b")
	s := New(ab)
	s.AddEdge("s0", "a", "s1")
	s.AddEdge("s1", "b", "s0")
	init, _ := s.LookupState("s0")
	s.SetInitial(init)
	return s
}

func TestBasics(t *testing.T) {
	s := loopSystem()
	if s.NumStates() != 2 {
		t.Fatalf("NumStates = %d", s.NumStates())
	}
	s0, _ := s.LookupState("s0")
	if s.StateName(s0) != "s0" {
		t.Error("StateName mismatch")
	}
	sa, _ := s.Alphabet().Lookup("a")
	if en := s.Enabled(s0); len(en) != 1 || en[0] != sa {
		t.Errorf("Enabled(s0) = %v", en)
	}
	if got := len(s.Edges()); got != 2 {
		t.Errorf("Edges = %d, want 2", got)
	}
	// Duplicate AddState returns the same state.
	if st := s.AddState("s0"); st != s0 {
		t.Error("AddState not idempotent on names")
	}
}

func TestAcceptsWord(t *testing.T) {
	s := loopSystem()
	ab := s.Alphabet()
	for _, tc := range []struct {
		w    []string
		want bool
	}{
		{nil, true},
		{[]string{"a"}, true},
		{[]string{"a", "b", "a"}, true},
		{[]string{"b"}, false},
		{[]string{"a", "a"}, false},
	} {
		if got := s.AcceptsWord(word.FromNames(ab, tc.w...)); got != tc.want {
			t.Errorf("AcceptsWord(%v) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestNFAAndBehaviors(t *testing.T) {
	s := loopSystem()
	a, err := s.NFA()
	if err != nil {
		t.Fatal(err)
	}
	if ok, w := a.IsPrefixClosed(); !ok {
		t.Errorf("system language not prefix-closed, witness %v", w)
	}
	b, err := s.Behaviors()
	if err != nil {
		t.Fatal(err)
	}
	ab := s.Alphabet()
	if !b.AcceptsLasso(word.MustLasso(nil, word.FromNames(ab, "a", "b"))) {
		t.Error("behaviors reject (ab)^ω")
	}
	if b.AcceptsLasso(word.MustLasso(nil, word.FromNames(ab, "a"))) {
		t.Error("behaviors accept a^ω")
	}
}

func TestTrimRemovesDeadEnds(t *testing.T) {
	s := loopSystem()
	// Dead end d reachable from s0; unreachable state u.
	s.AddEdge("s0", "b", "d")
	s.AddState("u")
	trimmed, err := s.Trim()
	if err != nil {
		t.Fatal(err)
	}
	if trimmed.NumStates() != 2 {
		t.Errorf("Trim left %d states, want 2", trimmed.NumStates())
	}
	if _, ok := trimmed.LookupState("d"); ok {
		t.Error("dead end survived Trim")
	}
	// A system whose initial state dies must error.
	ab := alphabet.FromNames("a")
	dead := New(ab)
	dead.AddEdge("x", "a", "y")
	ix, _ := dead.LookupState("x")
	dead.SetInitial(ix)
	if _, err := dead.Trim(); err == nil {
		t.Error("Trim accepted a system without infinite behavior")
	}
}

func TestNoInitialErrors(t *testing.T) {
	s := New(alphabet.FromNames("a"))
	s.AddEdge("x", "a", "x")
	if _, err := s.NFA(); err == nil {
		t.Error("NFA without initial state succeeded")
	}
	if _, err := s.Behaviors(); err == nil {
		t.Error("Behaviors without initial state succeeded")
	}
	if _, err := s.Trim(); err == nil {
		t.Error("Trim without initial state succeeded")
	}
}

func TestProductSynchronizesSharedActions(t *testing.T) {
	// P: p0 -sync-> p1 -priv1-> p0 ; Q: q0 -sync-> q1 -priv2-> q0.
	abP := alphabet.FromNames("sync", "priv1")
	p := New(abP)
	p.AddEdge("p0", "sync", "p1")
	p.AddEdge("p1", "priv1", "p0")
	ip, _ := p.LookupState("p0")
	p.SetInitial(ip)

	abQ := alphabet.FromNames("sync", "priv2")
	q := New(abQ)
	q.AddEdge("q0", "sync", "q1")
	q.AddEdge("q1", "priv2", "q0")
	iq, _ := q.LookupState("q0")
	q.SetInitial(iq)

	prod, err := Product(p, q)
	if err != nil {
		t.Fatal(err)
	}
	ab := prod.Alphabet()
	// sync must move both; priv1/priv2 interleave.
	if !prod.AcceptsWord(word.FromNames(ab, "sync", "priv1", "priv2")) {
		t.Error("product rejects sync·priv1·priv2")
	}
	if !prod.AcceptsWord(word.FromNames(ab, "sync", "priv2", "priv1")) {
		t.Error("product rejects sync·priv2·priv1")
	}
	if prod.AcceptsWord(word.FromNames(ab, "priv1")) {
		t.Error("product fires priv1 before its owner reached p1")
	}
	if prod.AcceptsWord(word.FromNames(ab, "sync", "sync")) {
		t.Error("product fires sync twice without returning")
	}
	if prod.NumStates() != 4 {
		t.Errorf("product has %d states, want 4", prod.NumStates())
	}
}

func TestProductPrivateOnly(t *testing.T) {
	// Disjoint alphabets: full interleaving, 4 states.
	abP := alphabet.FromNames("x")
	p := New(abP)
	p.AddEdge("p0", "x", "p0")
	ip, _ := p.LookupState("p0")
	p.SetInitial(ip)

	abQ := alphabet.FromNames("y")
	q := New(abQ)
	q.AddEdge("q0", "y", "q0")
	iq, _ := q.LookupState("q0")
	q.SetInitial(iq)

	prod, err := Product(p, q)
	if err != nil {
		t.Fatal(err)
	}
	ab := prod.Alphabet()
	if !prod.AcceptsWord(word.FromNames(ab, "x", "y", "x", "y", "y")) {
		t.Error("interleaving product rejects a shuffle")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	text := `
# the small loop
init s0
s0 a s1
s1 b s0
`
	s, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStates() != 2 || s.Initial() < 0 {
		t.Fatalf("parsed system wrong: %d states", s.NumStates())
	}
	out := s.FormatString()
	s2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse: %v (text: %q)", err, out)
	}
	if s2.FormatString() != out {
		t.Error("Format/Parse not a fixpoint")
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"s0 a s1",                       // missing init
		"init s0\ninit s1\ns0 a s1",     // duplicate init
		"init\ns0 a s1",                 // malformed init
		"init s0\ns0 a",                 // short transition line
		"init s0\ns0 a s1 extra-field1", // long transition line
	} {
		if _, err := ParseString(text); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", text)
		}
	}
}

func TestDOT(t *testing.T) {
	s := loopSystem()
	dot := s.DOT("loop")
	for _, want := range []string{"digraph", "s0", "s1", "grey80", "label=\"a\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := loopSystem()
	c := s.Clone()
	c.AddEdge("s0", "a", "s0")
	if len(s.Edges()) != 2 {
		t.Error("mutating clone changed original")
	}
	if len(c.Edges()) != 3 {
		t.Error("clone edge not added")
	}
}
