// Package ts implements finite-state transition systems without
// acceptance conditions — the system model of Section 6 of Nitsche &
// Wolper (PODC'97). A system accepts the prefix-closed regular language
// L of its finite action sequences; its behaviors are the ω-language
// lim(L). The package provides construction, trimming, synchronous
// (shared-action) composition for compositional analysis, conversion to
// finite and Büchi automata, a text format, and DOT export.
package ts

import (
	"context"
	"fmt"
	"sort"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/graph"
	"relive/internal/interrupt"
	"relive/internal/nfa"
	"relive/internal/word"
)

// State identifies a system state.
type State int

// System is a finite-state transition system with a single initial state
// and action-labeled transitions. It may be nondeterministic.
type System struct {
	ab      *alphabet.Alphabet
	names   []string
	index   map[string]State
	initial State // -1 until set
	trans   []map[alphabet.Symbol][]State
}

// New returns an empty system over ab.
func New(ab *alphabet.Alphabet) *System {
	return &System{ab: ab, index: map[string]State{}, initial: -1}
}

// Alphabet returns the system's action alphabet.
func (s *System) Alphabet() *alphabet.Alphabet { return s.ab }

// NumStates returns the number of states.
func (s *System) NumStates() int { return len(s.names) }

// AddState adds a state with the given (unique) name, or returns the
// existing state of that name.
func (s *System) AddState(name string) State {
	if st, ok := s.index[name]; ok {
		return st
	}
	st := State(len(s.names))
	s.names = append(s.names, name)
	s.index[name] = st
	s.trans = append(s.trans, nil)
	return st
}

// StateName returns the name of st.
func (s *System) StateName(st State) string { return s.names[st] }

// LookupState returns the state with the given name.
func (s *System) LookupState(name string) (State, bool) {
	st, ok := s.index[name]
	return st, ok
}

// SetInitial sets the initial state.
func (s *System) SetInitial(st State) { s.initial = st }

// Initial returns the initial state, or -1 when unset.
func (s *System) Initial() State { return s.initial }

// AddTransition adds st --sym--> to. ε is not a legal action.
func (s *System) AddTransition(st State, sym alphabet.Symbol, to State) {
	if sym == alphabet.Epsilon {
		panic("ts: ε is not a legal action label")
	}
	m := s.trans[st]
	if m == nil {
		m = make(map[alphabet.Symbol][]State)
		s.trans[st] = m
	}
	for _, t := range m[sym] {
		if t == to {
			return
		}
	}
	m[sym] = append(m[sym], to)
}

// AddEdge adds a transition by names, interning states and the action.
func (s *System) AddEdge(from, action, to string) {
	s.AddTransition(s.AddState(from), s.ab.Symbol(action), s.AddState(to))
}

// Succ returns the successors of st under sym.
func (s *System) Succ(st State, sym alphabet.Symbol) []State { return s.trans[st][sym] }

// Enabled returns the actions enabled at st, sorted.
func (s *System) Enabled(st State) []alphabet.Symbol {
	out := make([]alphabet.Symbol, 0, len(s.trans[st]))
	for sym, ts := range s.trans[st] {
		if len(ts) > 0 {
			out = append(out, sym)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edge is a labeled transition, used by enumeration helpers.
type Edge struct {
	From State
	Sym  alphabet.Symbol
	To   State
}

// Edges returns all transitions in deterministic order.
func (s *System) Edges() []Edge {
	var out []Edge
	for from := range s.trans {
		syms := make([]alphabet.Symbol, 0, len(s.trans[from]))
		for sym := range s.trans[from] {
			syms = append(syms, sym)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, sym := range syms {
			for _, to := range s.trans[from][sym] {
				out = append(out, Edge{From: State(from), Sym: sym, To: to})
			}
		}
	}
	return out
}

// Clone returns a deep copy sharing the alphabet.
func (s *System) Clone() *System {
	c := New(s.ab)
	for _, n := range s.names {
		c.AddState(n)
	}
	for from, m := range s.trans {
		for sym, ts := range m {
			for _, to := range ts {
				c.AddTransition(State(from), sym, to)
			}
		}
	}
	c.initial = s.initial
	return c
}

// NFA returns the finite automaton accepting L: all finite action
// sequences from the initial state, every state accepting. The language
// is prefix-closed by construction.
func (s *System) NFA() (*nfa.NFA, error) {
	if s.initial < 0 {
		return nil, fmt.Errorf("ts: system has no initial state")
	}
	a := nfa.New(s.ab)
	for range s.names {
		a.AddState(true)
	}
	for from, m := range s.trans {
		for sym, ts := range m {
			for _, to := range ts {
				a.AddTransition(nfa.State(from), sym, nfa.State(to))
			}
		}
	}
	a.SetInitial(nfa.State(s.initial))
	return a, nil
}

// Behaviors returns the Büchi automaton for the system's behavior set
// lim(L) (Definition 6.2): states without infinite continuations are
// trimmed and all remaining states accept.
func (s *System) Behaviors() (*buchi.Buchi, error) {
	a, err := s.NFA()
	if err != nil {
		return nil, err
	}
	return buchi.LimitOfAllAccepting(a.Trim())
}

// Trim removes states that are unreachable or have no infinite
// continuation, so that every remaining finite path is a prefix of a
// behavior. It returns an error when nothing survives.
func (s *System) Trim() (*System, error) {
	return s.TrimCtx(nil)
}

// TrimCtx is Trim with cooperative cancellation checkpoints in the
// reachability pass and the liveness fixpoint, so a context deadline
// stops the trimming of a huge system. A nil ctx never cancels; a
// context error is returned as-is (wrapped), never conflated with the
// "no infinite behavior" verdict error.
func (s *System) TrimCtx(ctx context.Context) (*System, error) {
	if s.initial < 0 {
		return nil, fmt.Errorf("ts: system has no initial state")
	}
	n := s.NumStates()
	succ := func(v int) []int {
		var out []int
		for _, ts := range s.trans[v] {
			for _, t := range ts {
				out = append(out, int(t))
			}
		}
		return out
	}
	reach, err := graph.ReachableCtx(ctx, n, []int{int(s.initial)}, succ)
	if err != nil {
		return nil, fmt.Errorf("ts: trim: %w", err)
	}
	alive := make([]bool, n)
	copy(alive, reach)
	var tick interrupt.Tick
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			if err := tick.Poll(ctx); err != nil {
				return nil, fmt.Errorf("ts: trim: %w", err)
			}
			if !alive[v] {
				continue
			}
			hasSucc := false
			for _, t := range succ(v) {
				if alive[t] {
					hasSucc = true
					break
				}
			}
			if !hasSucc {
				alive[v] = false
				changed = true
			}
		}
	}
	if !alive[s.initial] {
		return nil, fmt.Errorf("ts: initial state has no infinite behavior")
	}
	out := New(s.ab)
	for v := 0; v < n; v++ {
		if alive[v] {
			out.AddState(s.names[v])
		}
	}
	for v := 0; v < n; v++ {
		if !alive[v] {
			continue
		}
		from, _ := out.LookupState(s.names[v])
		for sym, ts := range s.trans[v] {
			for _, to := range ts {
				if alive[to] {
					toSt, _ := out.LookupState(s.names[to])
					out.AddTransition(from, sym, toSt)
				}
			}
		}
	}
	init, _ := out.LookupState(s.names[s.initial])
	out.SetInitial(init)
	return out, nil
}

// AcceptsWord reports whether w is a finite action sequence of the
// system (w ∈ L).
func (s *System) AcceptsWord(w word.Word) bool {
	if s.initial < 0 {
		return false
	}
	cur := map[State]bool{s.initial: true}
	for _, sym := range w {
		next := map[State]bool{}
		for st := range cur {
			for _, t := range s.trans[st][sym] {
				next[t] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	return true
}

// Product returns the synchronous composition of two systems for
// compositional analysis ([22] in the paper): actions present in both
// alphabets synchronize, private actions interleave. The result's
// alphabet is the union; only states reachable from the joint initial
// state are materialized. State names are "x|y".
func Product(a, b *System) (*System, error) {
	if a.initial < 0 || b.initial < 0 {
		return nil, fmt.Errorf("ts: product of systems without initial states")
	}
	ab := a.ab.Clone()
	mapB := ab.Extend(b.ab)
	sharedByName := map[alphabet.Symbol]alphabet.Symbol{} // product symbol -> b's symbol
	for _, symB := range b.ab.Symbols() {
		sharedByName[mapB[symB]] = symB
	}
	isShared := func(sym alphabet.Symbol) bool {
		_, inB := sharedByName[sym]
		_, inA := a.ab.Lookup(ab.Name(sym))
		return inB && inA
	}

	out := New(ab)
	type pair struct{ x, y State }
	index := map[pair]State{}
	var queue []pair
	intern := func(p pair) State {
		if st, ok := index[p]; ok {
			return st
		}
		st := out.AddState(a.names[p.x] + "|" + b.names[p.y])
		index[p] = st
		queue = append(queue, p)
		return st
	}
	init := intern(pair{a.initial, b.initial})
	out.SetInitial(init)
	for qi := 0; qi < len(queue); qi++ {
		p := queue[qi]
		from := index[p]
		// Moves of a: private actions of a, or shared with b able to match.
		for symA, ts := range a.trans[p.x] {
			sym := ab.Symbol(a.ab.Name(symA)) // same value: ab extends a's alphabet
			if isShared(sym) {
				symB := sharedByName[sym]
				for _, tx := range ts {
					for _, ty := range b.trans[p.y][symB] {
						out.AddTransition(from, sym, intern(pair{tx, ty}))
					}
				}
			} else {
				for _, tx := range ts {
					out.AddTransition(from, sym, intern(pair{tx, p.y}))
				}
			}
		}
		// Private moves of b.
		for symB, ts := range b.trans[p.y] {
			sym := mapB[symB]
			if isShared(sym) {
				continue // handled above
			}
			for _, ty := range ts {
				out.AddTransition(from, sym, intern(pair{p.x, ty}))
			}
		}
	}
	return out, nil
}
