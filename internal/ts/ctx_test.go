package ts

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"relive/internal/alphabet"
)

// bigCycle builds an n-state single-cycle system; trimming it walks
// every state in both the reachability pass and the liveness fixpoint,
// far past the 1<<10-iteration context poll interval.
func bigCycle(tb testing.TB, n int) *System {
	tb.Helper()
	sys := New(alphabet.FromNames("a"))
	for i := 0; i < n; i++ {
		sys.AddState(fmt.Sprintf("s%d", i))
	}
	a := sys.Alphabet().Symbol("a")
	for i := 0; i < n; i++ {
		sys.AddTransition(State(i), a, State((i+1)%n))
	}
	sys.SetInitial(0)
	return sys
}

func TestTrimCtxCancelled(t *testing.T) {
	sys := bigCycle(t, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sys.TrimCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "ts: trim") {
		t.Fatalf("err %q lost the trim wrap", err)
	}
	// The context error must stay distinguishable from the genuine
	// "no infinite behavior" verdict error.
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("Canceled error also matches DeadlineExceeded")
	}
}

func TestTrimCtxNilAndLiveMatchTrim(t *testing.T) {
	sys := bigCycle(t, 5000)
	want, err := sys.Trim()
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []context.Context{nil, context.Background()} {
		got, err := sys.TrimCtx(ctx)
		if err != nil {
			t.Fatalf("ctx=%v: %v", ctx, err)
		}
		if got.NumStates() != want.NumStates() {
			t.Fatalf("ctx=%v: trimmed to %d states, want %d", ctx, got.NumStates(), want.NumStates())
		}
	}
}
