package ts

import (
	"fmt"
	"sort"
	"strings"
)

// BisimulationClasses computes the strong-bisimulation equivalence
// classes of the system's states by partition refinement: two states
// are equivalent iff for every action each can match the other's
// transitions into equivalent states. The returned slice maps each
// state to its class id.
func (s *System) BisimulationClasses() []int {
	n := s.NumStates()
	class := make([]int, n) // everything starts equivalent
	numClasses := 1
	for {
		next := make(map[string]int)
		newClass := make([]int, n)
		for i := 0; i < n; i++ {
			sig := s.bisimSignature(State(i), class)
			id, ok := next[sig]
			if !ok {
				id = len(next)
				next[sig] = id
			}
			newClass[i] = id
		}
		if len(next) == numClasses {
			return newClass
		}
		class = newClass
		numClasses = len(next)
	}
}

// bisimSignature canonically describes a state's one-step behavior up
// to the current partition.
func (s *System) bisimSignature(st State, class []int) string {
	var moves []string
	for sym, targets := range s.trans[st] {
		blocks := map[int]bool{}
		for _, t := range targets {
			blocks[class[t]] = true
		}
		ids := make([]int, 0, len(blocks))
		for b := range blocks {
			ids = append(ids, b)
		}
		sort.Ints(ids)
		for _, b := range ids {
			moves = append(moves, fmt.Sprintf("%d>%d", int(sym), b))
		}
	}
	sort.Strings(moves)
	return strings.Join(moves, ";")
}

// BisimulationQuotient returns the quotient of the system by strong
// bisimulation: one state per class, named after a representative
// member, preserving the initial state and the step relation. The
// quotient is strongly bisimilar to the original, hence has the same
// finite-path language and the same behaviors — and therefore the same
// relative liveness and relative safety properties.
func (s *System) BisimulationQuotient() (*System, error) {
	if s.initial < 0 {
		return nil, fmt.Errorf("ts: system has no initial state")
	}
	class := s.BisimulationClasses()
	out := New(s.ab)
	rep := map[int]State{}
	// Representative per class: the lowest-numbered member, keeping
	// names stable.
	for i := 0; i < s.NumStates(); i++ {
		if _, ok := rep[class[i]]; !ok {
			rep[class[i]] = out.AddState(s.names[i])
		}
	}
	for i := 0; i < s.NumStates(); i++ {
		from := rep[class[i]]
		for sym, targets := range s.trans[i] {
			for _, t := range targets {
				out.AddTransition(from, sym, rep[class[t]])
			}
		}
	}
	out.SetInitial(rep[class[s.initial]])
	return out, nil
}

// Bisimilar reports whether two systems are strongly bisimilar from
// their initial states, by refining a joint partition over the disjoint
// union of their state spaces.
func Bisimilar(a, b *System) (bool, error) {
	if a.initial < 0 || b.initial < 0 {
		return false, fmt.Errorf("ts: system has no initial state")
	}
	// Merge alphabets so action symbols agree by name.
	ab := a.ab.Clone()
	mapB := ab.Extend(b.ab)

	joint := New(ab)
	for i := 0; i < a.NumStates(); i++ {
		joint.AddState("a:" + a.names[i])
	}
	for i := 0; i < b.NumStates(); i++ {
		joint.AddState("b:" + b.names[i])
	}
	offset := State(a.NumStates())
	for i := 0; i < a.NumStates(); i++ {
		for sym, ts := range a.trans[i] {
			for _, t := range ts {
				joint.AddTransition(State(i), sym, t)
			}
		}
	}
	for i := 0; i < b.NumStates(); i++ {
		for sym, ts := range b.trans[i] {
			for _, t := range ts {
				joint.AddTransition(State(i)+offset, mapB[sym], t+offset)
			}
		}
	}
	class := joint.BisimulationClasses()
	return class[a.initial] == class[offset+b.initial], nil
}
