package ts

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"relive/internal/alphabet"
)

// Parse reads a system from the line-based text format:
//
//	# comment
//	init <state>
//	<from> <action> <to>
//
// States and actions are interned on first use. The init line may appear
// anywhere; exactly one is required.
func Parse(r io.Reader) (*System, error) {
	s := New(alphabet.New())
	sc := bufio.NewScanner(r)
	lineNo := 0
	haveInit := false
	var initName string
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "init":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ts: line %d: init wants one state name", lineNo)
			}
			if haveInit {
				return nil, fmt.Errorf("ts: line %d: duplicate init", lineNo)
			}
			haveInit = true
			initName = fields[1]
		case len(fields) == 3:
			if fields[1] == alphabet.EpsilonName {
				return nil, fmt.Errorf("ts: line %d: %s is not a valid action name", lineNo, alphabet.EpsilonName)
			}
			s.AddEdge(fields[0], fields[1], fields[2])
		default:
			return nil, fmt.Errorf("ts: line %d: want %q or %q", lineNo, "init <state>", "<from> <action> <to>")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ts: read: %w", err)
	}
	if !haveInit {
		return nil, fmt.Errorf("ts: missing init line")
	}
	s.SetInitial(s.AddState(initName))
	return s, nil
}

// ParseString is Parse on a string.
func ParseString(text string) (*System, error) {
	return Parse(strings.NewReader(text))
}

// Format writes the system in the text format accepted by Parse.
func (s *System) Format(w io.Writer) error {
	if s.initial >= 0 {
		if _, err := fmt.Fprintf(w, "init %s\n", s.names[s.initial]); err != nil {
			return err
		}
	}
	for _, e := range s.Edges() {
		if _, err := fmt.Fprintf(w, "%s %s %s\n", s.names[e.From], s.ab.Name(e.Sym), s.names[e.To]); err != nil {
			return err
		}
	}
	return nil
}

// FormatString renders the system in the text format.
func (s *System) FormatString() string {
	var b strings.Builder
	_ = s.Format(&b) // strings.Builder never errors
	return b.String()
}

// DOT renders the system as a Graphviz digraph. The initial state is
// shaded grey, matching the convention of the paper's figures.
func (s *System) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for i, n := range s.names {
		attrs := ""
		if State(i) == s.initial {
			attrs = " style=filled fillcolor=grey80"
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", n, n, attrs)
	}
	// Group parallel edges by (from, to) for readability.
	type key struct{ from, to State }
	labels := map[key][]string{}
	for _, e := range s.Edges() {
		k := key{e.From, e.To}
		labels[k] = append(labels[k], s.ab.Name(e.Sym))
	}
	keys := make([]key, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
			s.names[k.from], s.names[k.to], strings.Join(labels[k], ", "))
	}
	b.WriteString("}\n")
	return b.String()
}
