package rex

import (
	"math/rand"
	"strings"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/nfa"
	"relive/internal/word"
)

func accepts(t *testing.T, a *nfa.NFA, ab *alphabet.Alphabet, names ...string) bool {
	t.Helper()
	return a.Accepts(word.FromNames(ab, names...))
}

func TestBasicExpressions(t *testing.T) {
	ab := alphabet.New()
	tests := []struct {
		expr   string
		accept [][]string
		reject [][]string
	}{
		{
			expr:   "a b",
			accept: [][]string{{"a", "b"}},
			reject: [][]string{{}, {"a"}, {"b", "a"}, {"a", "b", "a"}},
		},
		{
			expr:   "a | b",
			accept: [][]string{{"a"}, {"b"}},
			reject: [][]string{{}, {"a", "b"}},
		},
		{
			expr:   "a *",
			accept: [][]string{{}, {"a"}, {"a", "a", "a"}},
			reject: [][]string{{"b"}, {"a", "b"}},
		},
		{
			expr:   "(a b) +",
			accept: [][]string{{"a", "b"}, {"a", "b", "a", "b"}},
			reject: [][]string{{}, {"a"}, {"a", "b", "a"}},
		},
		{
			expr:   "a ? b",
			accept: [][]string{{"b"}, {"a", "b"}},
			reject: [][]string{{}, {"a"}, {"a", "a", "b"}},
		},
		{
			expr:   "ε | a",
			accept: [][]string{{}, {"a"}},
			reject: [][]string{{"a", "a"}},
		},
		{
			expr:   "request (result | reject) *",
			accept: [][]string{{"request"}, {"request", "result", "reject"}},
			reject: [][]string{{}, {"result"}},
		},
	}
	for _, tc := range tests {
		e, err := Parse(ab, tc.expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.expr, err)
			continue
		}
		a := e.NFA()
		for _, w := range tc.accept {
			if !accepts(t, a, ab, w...) {
				t.Errorf("%q rejects %v", tc.expr, w)
			}
		}
		for _, w := range tc.reject {
			if accepts(t, a, ab, w...) {
				t.Errorf("%q accepts %v", tc.expr, w)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	ab := alphabet.New()
	for _, in := range []string{"", "(", "a )", "| a", "* a", "a £"} {
		if _, err := Parse(ab, in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestPrefixClosure(t *testing.T) {
	ab := alphabet.New()
	e := MustParse(ab, "(request (result | reject)) *")
	p := e.PrefixClosureNFA()
	if ok, w := p.IsPrefixClosed(); !ok {
		t.Fatalf("prefix closure not prefix-closed, witness %v", w)
	}
	if !accepts(t, p, ab, "request") {
		t.Error("pre(L) rejects the proper prefix request")
	}
	if accepts(t, p, ab, "result") {
		t.Error("pre(L) accepts a non-prefix")
	}
}

// TestQuickAgainstReferenceMatcher cross-checks the Thompson NFA against
// a direct recursive matcher on random expressions and words.
func TestQuickAgainstReferenceMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	names := []string{"a", "b"}
	ab := alphabet.FromNames(names...)
	for trial := 0; trial < 80; trial++ {
		text := randomExpr(rng, 3)
		e, err := Parse(ab, text)
		if err != nil {
			t.Fatalf("generated expression %q failed to parse: %v", text, err)
		}
		a := e.NFA()
		for i := 0; i < 30; i++ {
			w := make([]string, rng.Intn(6))
			for j := range w {
				w[j] = names[rng.Intn(len(names))]
			}
			got := accepts(t, a, ab, w...)
			want := refMatch(e.root, w)
			if got != want {
				t.Fatalf("trial %d: %q on %v: NFA=%v ref=%v", trial, text, w, got, want)
			}
		}
	}
}

// randomExpr generates a random expression string.
func randomExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Float64() < 0.3 {
		return []string{"a", "b", "ε"}[rng.Intn(3)]
	}
	switch rng.Intn(5) {
	case 0:
		return "( " + randomExpr(rng, depth-1) + " " + randomExpr(rng, depth-1) + " )"
	case 1:
		return "( " + randomExpr(rng, depth-1) + " | " + randomExpr(rng, depth-1) + " )"
	case 2:
		return "( " + randomExpr(rng, depth-1) + " ) *"
	case 3:
		return "( " + randomExpr(rng, depth-1) + " ) +"
	default:
		return "( " + randomExpr(rng, depth-1) + " ) ?"
	}
}

// refMatch is a straightforward (exponential) reference matcher working
// on name slices. Symbol names rely on the test alphabet interning
// order (FromNames("a", "b") gives a=1, b=2).
func refMatch(n node, w []string) bool {
	switch v := n.(type) {
	case symNode:
		if len(w) != 1 {
			return false
		}
		return w[0] == []string{"", "a", "b"}[int(v.sym)]
	case epsNode:
		return len(w) == 0
	case concatNode:
		return concatMatch(v.parts, w)
	case altNode:
		for _, p := range v.parts {
			if refMatch(p, w) {
				return true
			}
		}
		return false
	case starNode:
		if len(w) == 0 {
			return true
		}
		for split := 1; split <= len(w); split++ {
			if refMatch(v.sub, w[:split]) && refMatch(starNode{sub: v.sub}, w[split:]) {
				return true
			}
		}
		return false
	case plusNode:
		return refMatch(concatNode{parts: []node{v.sub, starNode{sub: v.sub}}}, w)
	case optNode:
		return len(w) == 0 || refMatch(v.sub, w)
	}
	return false
}

func concatMatch(parts []node, w []string) bool {
	if len(parts) == 0 {
		return len(w) == 0
	}
	if len(parts) == 1 {
		return refMatch(parts[0], w)
	}
	for split := 0; split <= len(w); split++ {
		if refMatch(parts[0], w[:split]) && concatMatch(parts[1:], w[split:]) {
			return true
		}
	}
	return false
}

func TestLexerHandlesPunctuationTightly(t *testing.T) {
	ab := alphabet.New()
	e, err := Parse(ab, "a(b|c)*")
	if err != nil {
		t.Fatal(err)
	}
	a := e.NFA()
	if !accepts(t, a, ab, "a", "b", "c", "b") {
		t.Error("tight syntax a(b|c)* rejects abcb")
	}
	if got := strings.Count("a(b|c)*", "("); got != 1 {
		t.Fatal("sanity")
	}
}
