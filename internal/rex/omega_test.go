package rex

import (
	"math/rand"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/gen"
	"relive/internal/word"
)

func omegaLasso(ab *alphabet.Alphabet, prefix, loop []string) word.Lasso {
	return word.MustLasso(word.FromNames(ab, prefix...), word.FromNames(ab, loop...))
}

func TestParseOmegaBasics(t *testing.T) {
	ab := alphabet.New()
	o, err := ParseOmega(ab, "lock ( request no reject ) ^w")
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Buchi()
	if err != nil {
		t.Fatal(err)
	}
	good := omegaLasso(ab, []string{"lock"}, []string{"request", "no", "reject"})
	if !b.AcceptsLasso(good) {
		t.Error("rejects lock·(request·no·reject)^ω")
	}
	bad := omegaLasso(ab, nil, []string{"request", "no", "reject"})
	if b.AcceptsLasso(bad) {
		t.Error("accepts the loop without the lock prefix")
	}
}

func TestParseOmegaEmptyPrefix(t *testing.T) {
	ab := alphabet.New()
	o, err := ParseOmega(ab, "( a b ) ^ω")
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Buchi()
	if err != nil {
		t.Fatal(err)
	}
	if !b.AcceptsLasso(omegaLasso(ab, nil, []string{"a", "b"})) {
		t.Error("rejects (ab)^ω")
	}
	if b.AcceptsLasso(omegaLasso(ab, nil, []string{"b", "a"})) {
		t.Error("accepts (ba)^ω")
	}
	// Different lasso representation of the same word must agree.
	if !b.AcceptsLasso(omegaLasso(ab, []string{"a", "b"}, []string{"a", "b", "a", "b"})) {
		t.Error("rejects ab·(abab)^ω, the same ω-word")
	}
}

func TestParseOmegaErrors(t *testing.T) {
	ab := alphabet.New()
	for _, text := range []string{
		"a b",            // no ^w
		"a ^w",           // loop not parenthesized
		"( a ^w",         // unbalanced
		"( a | ) ^w",     // bad loop expression
		"( ( a ) ^w",     // unbalanced
		"x | ( a ) ^w |", // bad prefix expression... trailing |
	} {
		if _, err := ParseOmega(ab, text); err == nil {
			t.Errorf("ParseOmega(%q) succeeded, want error", text)
		}
	}
	// ε-accepting loop must be rejected at automaton construction.
	o, err := ParseOmega(ab, "( a * ) ^w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Buchi(); err == nil {
		t.Error("loop accepting ε produced an automaton")
	}
}

// TestQuickOmegaMembership cross-checks the U·V^ω automaton against a
// direct decomposition check on sampled lassos.
func TestQuickOmegaMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	ab := alphabet.FromNames("a", "b")
	// U = a*, V = a b | b: decidable membership by automaton product is
	// what we test, so the oracle uses the NFAs directly via bounded
	// decomposition over the lasso's unrolling.
	o, err := ParseOmega(ab, "a * ( a b | b ) ^w")
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Buchi()
	if err != nil {
		t.Fatal(err)
	}
	uNFA := o.Prefix.NFA()
	vNFA := o.Loop.NFA()
	for i := 0; i < 300; i++ {
		l := gen.Lasso(rng, ab, 3, 3)
		got := b.AcceptsLasso(l)
		want := bruteOmegaMember(uNFA.Accepts, vNFA.Accepts, l, 24)
		if got != want {
			t.Fatalf("U·V^ω membership of %s: automaton %v, brute force %v",
				l.String(ab), got, want)
		}
	}
}

// bruteOmegaMember checks membership in U·V^ω by searching cut points in
// the first bound letters: u before cut c0, then V-words between
// consecutive cuts, requiring the tail cuts to hit a repeating
// configuration (two cuts at the same lasso phase beyond the prefix).
func bruteOmegaMember(inU, inV func(word.Word) bool, l word.Lasso, bound int) bool {
	letters := l.PrefixOfLen(bound)
	phase := func(i int) int {
		if i < len(l.Prefix) {
			return -i - 1 // distinct phases inside the prefix
		}
		return (i - len(l.Prefix)) % len(l.Loop)
	}
	// DFS over cut sequences: positions 0 ≤ c0 < c1 < ... ≤ bound with
	// letters[:c0] ∈ U and each segment ∈ V; accept when two cuts share
	// a loop phase (the segment pattern between them can repeat forever).
	var rec func(cur int, seen map[int]bool) bool
	rec = func(cur int, seen map[int]bool) bool {
		if cur >= len(l.Prefix) {
			ph := phase(cur)
			if seen[ph] {
				return true
			}
			seen = copyAndAdd(seen, ph)
		}
		for next := cur + 1; next <= bound; next++ {
			if inV(letters[cur:next]) && rec(next, seen) {
				return true
			}
		}
		return false
	}
	for c0 := 0; c0 <= bound; c0++ {
		if inU(letters[:c0]) && rec(c0, map[int]bool{}) {
			return true
		}
	}
	return false
}

func copyAndAdd(m map[int]bool, k int) map[int]bool {
	out := make(map[int]bool, len(m)+1)
	for kk := range m {
		out[kk] = true
	}
	out[k] = true
	return out
}
