package rex

import (
	"fmt"
	"strings"

	"relive/internal/alphabet"
	"relive/internal/buchi"
)

// OmegaExpr is an ω-regular expression U·(V)^ω with regular U and V.
type OmegaExpr struct {
	Prefix *Expr // may denote {ε}
	Loop   *Expr // must not accept ε
	ab     *alphabet.Alphabet
}

// ParseOmega parses an ω-regular expression of the form
//
//	[prefix-expression] ( loop-expression ) ^w
//
// e.g. "lock ( request no reject ) ^w" for the paper's counterexample
// computation, or "( a | b ) ( b ) ^w". The prefix may be empty. "^w"
// may also be written "^ω".
func ParseOmega(ab *alphabet.Alphabet, text string) (*OmegaExpr, error) {
	trimmed := strings.TrimSpace(text)
	var body string
	switch {
	case strings.HasSuffix(trimmed, "^w"):
		body = strings.TrimSpace(strings.TrimSuffix(trimmed, "^w"))
	case strings.HasSuffix(trimmed, "^ω"):
		body = strings.TrimSpace(strings.TrimSuffix(trimmed, "^ω"))
	default:
		return nil, fmt.Errorf("rex: ω-expression must end with \"^w\"")
	}
	if !strings.HasSuffix(body, ")") {
		return nil, fmt.Errorf("rex: the loop of an ω-expression must be parenthesized: (V)^w")
	}
	// Find the matching "(" of the final ")".
	depth := 0
	open := -1
	for i := len(body) - 1; i >= 0; i-- {
		switch body[i] {
		case ')':
			depth++
		case '(':
			depth--
			if depth == 0 {
				open = i
			}
		}
		if open >= 0 {
			break
		}
	}
	if open < 0 {
		return nil, fmt.Errorf("rex: unbalanced parentheses in ω-expression")
	}
	prefixText := strings.TrimSpace(body[:open])
	loopText := strings.TrimSpace(body[open+1 : len(body)-1])
	loop, err := Parse(ab, loopText)
	if err != nil {
		return nil, fmt.Errorf("rex: loop: %w", err)
	}
	var prefix *Expr
	if prefixText == "" {
		prefix = &Expr{root: epsNode{}, ab: ab}
	} else {
		prefix, err = Parse(ab, prefixText)
		if err != nil {
			return nil, fmt.Errorf("rex: prefix: %w", err)
		}
	}
	return &OmegaExpr{Prefix: prefix, Loop: loop, ab: ab}, nil
}

// Buchi compiles the ω-expression to a Büchi automaton for U·V^ω.
func (o *OmegaExpr) Buchi() (*buchi.Buchi, error) {
	return buchi.OmegaConcat(o.Prefix.NFA(), o.Loop.NFA())
}
