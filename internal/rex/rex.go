// Package rex implements regular expressions over action alphabets,
// compiled to NFAs by the Thompson construction. Expressions give the
// test suite, the examples and downstream users a concise way to write
// the prefix-closed languages and ω-language building blocks the paper
// works with (e.g. pre((request·(result|reject))*) and lim of it).
//
// Syntax (tokens are whitespace-separated, so multi-letter action names
// work naturally):
//
//	request (result | reject) *      concatenation, alternation, star
//	lock free ?                      optional
//	(request result) +               one-or-more
//	ε                                the empty word (also "eps")
//
// Postfix operators bind to the preceding atom or group; alternation
// binds loosest.
package rex

import (
	"fmt"
	"strings"
	"unicode"

	"relive/internal/alphabet"
	"relive/internal/nfa"
)

// Expr is a parsed regular expression.
type Expr struct {
	root node
	ab   *alphabet.Alphabet
}

type node interface{ isNode() }

type (
	symNode    struct{ sym alphabet.Symbol }
	epsNode    struct{}
	concatNode struct{ parts []node }
	altNode    struct{ parts []node }
	starNode   struct{ sub node }
	plusNode   struct{ sub node }
	optNode    struct{ sub node }
)

func (symNode) isNode()    {}
func (epsNode) isNode()    {}
func (concatNode) isNode() {}
func (altNode) isNode()    {}
func (starNode) isNode()   {}
func (plusNode) isNode()   {}
func (optNode) isNode()    {}

// Parse parses an expression, interning action names into ab.
func Parse(ab *alphabet.Alphabet, text string) (*Expr, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &rexParser{ab: ab, toks: toks}
	root, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("rex: unexpected %q", p.toks[p.pos])
	}
	return &Expr{root: root, ab: ab}, nil
}

// MustParse is Parse panicking on error, for constant expressions.
func MustParse(ab *alphabet.Alphabet, text string) *Expr {
	e, err := Parse(ab, text)
	if err != nil {
		panic(err)
	}
	return e
}

func lex(text string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsSpace(r):
			flush()
		case strings.ContainsRune("()|*+?", r):
			flush()
			toks = append(toks, string(r))
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.':
			cur.WriteRune(r)
		default:
			return nil, fmt.Errorf("rex: unexpected character %q", r)
		}
	}
	flush()
	return toks, nil
}

type rexParser struct {
	ab   *alphabet.Alphabet
	toks []string
	pos  int
}

func (p *rexParser) peek() (string, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return "", false
}

func (p *rexParser) parseAlt() (node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	parts := []node{first}
	for {
		t, ok := p.peek()
		if !ok || t != "|" {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return altNode{parts: parts}, nil
}

func (p *rexParser) parseConcat() (node, error) {
	var parts []node
	for {
		t, ok := p.peek()
		if !ok || t == "|" || t == ")" {
			break
		}
		atom, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, atom)
	}
	switch len(parts) {
	case 0:
		return nil, fmt.Errorf("rex: empty expression")
	case 1:
		return parts[0], nil
	}
	return concatNode{parts: parts}, nil
}

func (p *rexParser) parsePostfix() (node, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok {
			return atom, nil
		}
		switch t {
		case "*":
			p.pos++
			atom = starNode{sub: atom}
		case "+":
			p.pos++
			atom = plusNode{sub: atom}
		case "?":
			p.pos++
			atom = optNode{sub: atom}
		default:
			return atom, nil
		}
	}
}

func (p *rexParser) parseAtom() (node, error) {
	t, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("rex: unexpected end of expression")
	}
	switch t {
	case "(":
		p.pos++
		sub, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if t2, ok := p.peek(); !ok || t2 != ")" {
			return nil, fmt.Errorf("rex: missing closing parenthesis")
		}
		p.pos++
		return sub, nil
	case ")", "|", "*", "+", "?":
		return nil, fmt.Errorf("rex: unexpected %q", t)
	case alphabet.EpsilonName, "eps":
		p.pos++
		return epsNode{}, nil
	}
	p.pos++
	return symNode{sym: p.ab.Symbol(t)}, nil
}

// NFA compiles the expression to an NFA by the Thompson construction.
func (e *Expr) NFA() *nfa.NFA {
	a := nfa.New(e.ab)
	start, end := build(a, e.root)
	a.SetInitial(start)
	a.SetAccepting(end, true)
	return a
}

// build adds a fragment with a single entry and exit state.
func build(a *nfa.NFA, n node) (nfa.State, nfa.State) {
	switch v := n.(type) {
	case symNode:
		s := a.AddState(false)
		t := a.AddState(false)
		a.AddTransition(s, v.sym, t)
		return s, t
	case epsNode:
		s := a.AddState(false)
		t := a.AddState(false)
		a.AddTransition(s, alphabet.Epsilon, t)
		return s, t
	case concatNode:
		first, cur := build(a, v.parts[0])
		for _, part := range v.parts[1:] {
			ns, ne := build(a, part)
			a.AddTransition(cur, alphabet.Epsilon, ns)
			cur = ne
		}
		return first, cur
	case altNode:
		s := a.AddState(false)
		t := a.AddState(false)
		for _, part := range v.parts {
			ps, pe := build(a, part)
			a.AddTransition(s, alphabet.Epsilon, ps)
			a.AddTransition(pe, alphabet.Epsilon, t)
		}
		return s, t
	case starNode:
		s := a.AddState(false)
		t := a.AddState(false)
		ps, pe := build(a, v.sub)
		a.AddTransition(s, alphabet.Epsilon, ps)
		a.AddTransition(pe, alphabet.Epsilon, t)
		a.AddTransition(s, alphabet.Epsilon, t)
		a.AddTransition(pe, alphabet.Epsilon, ps)
		return s, t
	case plusNode:
		ps, pe := build(a, v.sub)
		a.AddTransition(pe, alphabet.Epsilon, ps)
		return ps, pe
	case optNode:
		s := a.AddState(false)
		t := a.AddState(false)
		ps, pe := build(a, v.sub)
		a.AddTransition(s, alphabet.Epsilon, ps)
		a.AddTransition(pe, alphabet.Epsilon, t)
		a.AddTransition(s, alphabet.Epsilon, t)
		return s, t
	}
	panic("rex: unknown node")
}

// PrefixClosureNFA compiles the expression and closes it under
// prefixes, yielding pre(L(e)) — the shape of system languages in the
// paper.
func (e *Expr) PrefixClosureNFA() *nfa.NFA {
	return e.NFA().PrefixLanguage()
}
