package word

import (
	"fmt"

	"relive/internal/alphabet"
)

// Lasso is an ultimately periodic ω-word u·v^ω. Loop must be nonempty for
// the lasso to denote an infinite word; the zero value is not a valid
// ω-word.
type Lasso struct {
	Prefix Word // u, possibly empty
	Loop   Word // v, must be nonempty
}

// NewLasso returns the ω-word prefix·loop^ω. It returns an error when the
// loop is empty, since v^ω is undefined for v = ε.
func NewLasso(prefix, loop Word) (Lasso, error) {
	if len(loop) == 0 {
		return Lasso{}, fmt.Errorf("lasso: empty loop")
	}
	return Lasso{Prefix: prefix.Clone(), Loop: loop.Clone()}, nil
}

// MustLasso is NewLasso for statically known-good inputs, mainly tests
// and examples. It panics on an empty loop.
func MustLasso(prefix, loop Word) Lasso {
	l, err := NewLasso(prefix, loop)
	if err != nil {
		panic(err)
	}
	return l
}

// Valid reports whether l denotes an ω-word (nonempty loop).
func (l Lasso) Valid() bool { return len(l.Loop) > 0 }

// At returns the i-th letter (0-based) of the ω-word.
func (l Lasso) At(i int) alphabet.Symbol {
	if i < len(l.Prefix) {
		return l.Prefix[i]
	}
	return l.Loop[(i-len(l.Prefix))%len(l.Loop)]
}

// PrefixOfLen returns the finite prefix of length n of the ω-word.
func (l Lasso) PrefixOfLen(n int) Word {
	out := make(Word, n)
	for i := 0; i < n; i++ {
		out[i] = l.At(i)
	}
	return out
}

// Suffix returns the ω-word with the first n letters dropped, itself an
// ultimately periodic word.
func (l Lasso) Suffix(n int) Lasso {
	if n <= len(l.Prefix) {
		return Lasso{Prefix: l.Prefix[n:].Clone(), Loop: l.Loop.Clone()}
	}
	k := (n - len(l.Prefix)) % len(l.Loop)
	// Rotate the loop by k.
	loop := make(Word, 0, len(l.Loop))
	loop = append(loop, l.Loop[k:]...)
	loop = append(loop, l.Loop[:k]...)
	return Lasso{Loop: loop}
}

// Normalize returns a canonical representation of the same ω-word: the
// loop is reduced to its primitive root, the prefix is shortened as far
// as possible by absorbing it into loop rotations, and then the prefix is
// the shortest possible one.
func (l Lasso) Normalize() Lasso {
	loop := primitiveRoot(l.Loop)
	prefix := l.Prefix.Clone()
	// While the last prefix letter equals the last loop letter, rotate the
	// loop backwards and shrink the prefix: u·a (b₁…bₖa)^ω = u (a b₁…bₖ)^ω.
	for len(prefix) > 0 && prefix[len(prefix)-1] == loop[len(loop)-1] {
		last := loop[len(loop)-1]
		rotated := make(Word, 0, len(loop))
		rotated = append(rotated, last)
		rotated = append(rotated, loop[:len(loop)-1]...)
		loop = rotated
		prefix = prefix[:len(prefix)-1]
	}
	return Lasso{Prefix: prefix, Loop: loop}
}

// primitiveRoot returns the shortest word r with r^k = v.
func primitiveRoot(v Word) Word {
	n := len(v)
	for d := 1; d <= n/2; d++ {
		if n%d != 0 {
			continue
		}
		ok := true
		for i := d; i < n && ok; i++ {
			ok = v[i] == v[i-d]
		}
		if ok {
			return v[:d].Clone()
		}
	}
	return v.Clone()
}

// Equal reports whether two lassos denote the same ω-word. Two ultimately
// periodic words are equal iff they agree on a prefix of length
// max(|u₁|,|u₂|) + lcm(|v₁|,|v₂|).
func (l Lasso) Equal(o Lasso) bool {
	if !l.Valid() || !o.Valid() {
		return false
	}
	n := maxInt(len(l.Prefix), len(o.Prefix)) + lcm(len(l.Loop), len(o.Loop))
	for i := 0; i < n; i++ {
		if l.At(i) != o.At(i) {
			return false
		}
	}
	return true
}

// CommonPrefixLen returns the length of the longest common prefix of two
// ω-words, or -1 when the words are equal (infinite common prefix).
func (l Lasso) CommonPrefixLen(o Lasso) int {
	n := maxInt(len(l.Prefix), len(o.Prefix)) + lcm(len(l.Loop), len(o.Loop))
	for i := 0; i < n; i++ {
		if l.At(i) != o.At(i) {
			return i
		}
	}
	return -1
}

// CantorDistance is the metric of Definition 4.8:
// d(x,y) = 1/(|common(x,y)|+1) for x ≠ y and 0 for x = y.
func (l Lasso) CantorDistance(o Lasso) float64 {
	c := l.CommonPrefixLen(o)
	if c < 0 {
		return 0
	}
	return 1 / float64(c+1)
}

// String renders the lasso as "u·(v)^ω" using names from ab.
func (l Lasso) String(ab *alphabet.Alphabet) string {
	loop := "(" + l.Loop.String(ab) + ")^ω"
	if len(l.Prefix) == 0 {
		return loop
	}
	return l.Prefix.String(ab) + "·" + loop
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }
