// Package word provides finite words and ultimately periodic ω-words
// ("lassos") over interned alphabets, together with the prefix operations
// and the Cantor metric (Definition 4.8 of Nitsche & Wolper, PODC'97)
// that the relative-liveness theory is phrased in.
//
// All infinite words manipulated by this module are ultimately periodic,
// written u·v^ω and represented by a Lasso. This is no loss: emptiness of
// ω-regular languages always has ultimately periodic witnesses, and every
// counterexample or witness produced by the checkers is a Lasso.
package word

import (
	"strings"

	"relive/internal/alphabet"
)

// Word is a finite word over an alphabet.
type Word []alphabet.Symbol

// Concat returns the concatenation w·v as a fresh word.
func (w Word) Concat(v Word) Word {
	out := make(Word, 0, len(w)+len(v))
	out = append(out, w...)
	out = append(out, v...)
	return out
}

// Equal reports whether w and v are the same word.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p is a prefix of w.
func (w Word) HasPrefix(p Word) bool {
	if len(p) > len(w) {
		return false
	}
	return w[:len(p)].Equal(p)
}

// Prefixes returns all prefixes of w, from ε to w itself.
func (w Word) Prefixes() []Word {
	out := make([]Word, 0, len(w)+1)
	for i := 0; i <= len(w); i++ {
		out = append(out, w[:i])
	}
	return out
}

// Clone returns a fresh copy of w.
func (w Word) Clone() Word {
	out := make(Word, len(w))
	copy(out, w)
	return out
}

// String renders w using names from ab, separated by dots. The empty
// word renders as "ε".
func (w Word) String(ab *alphabet.Alphabet) string {
	if len(w) == 0 {
		return alphabet.EpsilonName
	}
	parts := make([]string, len(w))
	for i, s := range w {
		parts[i] = ab.Name(s)
	}
	return strings.Join(parts, "·")
}

// FromNames builds a word by interning the given names into ab.
func FromNames(ab *alphabet.Alphabet, names ...string) Word {
	w := make(Word, len(names))
	for i, n := range names {
		w[i] = ab.Symbol(n)
	}
	return w
}

// CommonPrefixLen returns the length of the longest common prefix of two
// finite words.
func CommonPrefixLen(a, b Word) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
