package word

import (
	"testing"
	"testing/quick"

	"relive/internal/alphabet"
)

func ab2() *alphabet.Alphabet { return alphabet.FromNames("a", "b") }

func TestWordBasics(t *testing.T) {
	ab := ab2()
	w := FromNames(ab, "a", "b", "a")
	if got := w.String(ab); got != "a·b·a" {
		t.Errorf("String = %q", got)
	}
	if got := (Word{}).String(ab); got != alphabet.EpsilonName {
		t.Errorf("empty word String = %q", got)
	}
	v := FromNames(ab, "b")
	cat := w.Concat(v)
	if cat.String(ab) != "a·b·a·b" {
		t.Errorf("Concat = %q", cat.String(ab))
	}
	if !cat.HasPrefix(w) || w.HasPrefix(cat) {
		t.Error("HasPrefix misbehaves")
	}
	if n := len(w.Prefixes()); n != 4 {
		t.Errorf("Prefixes count = %d, want 4", n)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	ab := ab2()
	tests := []struct {
		a, b []string
		want int
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 2},
		{[]string{"a", "b"}, []string{"a", "a"}, 1},
		{[]string{"b"}, []string{"a"}, 0},
		{nil, []string{"a"}, 0},
	}
	for _, tc := range tests {
		got := CommonPrefixLen(FromNames(ab, tc.a...), FromNames(ab, tc.b...))
		if got != tc.want {
			t.Errorf("CommonPrefixLen(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLassoAtAndSuffix(t *testing.T) {
	ab := ab2()
	l := MustLasso(FromNames(ab, "a"), FromNames(ab, "b", "a"))
	// a (b a)^ω = a b a b a b a ...
	wantNames := []string{"a", "b", "a", "b", "a", "b"}
	for i, n := range wantNames {
		if got := ab.Name(l.At(i)); got != n {
			t.Errorf("At(%d) = %q, want %q", i, got, n)
		}
	}
	s := l.Suffix(2)
	// suffix from index 2: a b a b ... = (a b)^ω
	if got := ab.Name(s.At(0)); got != "a" {
		t.Errorf("Suffix(2).At(0) = %q, want a", got)
	}
	if !s.Equal(MustLasso(nil, FromNames(ab, "a", "b"))) {
		t.Errorf("Suffix(2) = %s, want (a·b)^ω", s.String(ab))
	}
}

func TestLassoEqualDifferentRepresentations(t *testing.T) {
	ab := ab2()
	// a (b a)^ω  ==  a b (a b)^ω  ==  (a b)^ω... check first two equal,
	// and both equal (a·b)^ω since the word is a b a b a b...
	l1 := MustLasso(FromNames(ab, "a"), FromNames(ab, "b", "a"))
	l2 := MustLasso(FromNames(ab, "a", "b"), FromNames(ab, "a", "b"))
	l3 := MustLasso(nil, FromNames(ab, "a", "b"))
	l4 := MustLasso(nil, FromNames(ab, "a", "b", "a", "b"))
	for i, pair := range [][2]Lasso{{l1, l2}, {l1, l3}, {l2, l3}, {l3, l4}} {
		if !pair[0].Equal(pair[1]) {
			t.Errorf("pair %d: %s != %s", i, pair[0].String(ab), pair[1].String(ab))
		}
	}
	diff := MustLasso(nil, FromNames(ab, "b", "a"))
	if l3.Equal(diff) {
		t.Errorf("(a·b)^ω == (b·a)^ω")
	}
}

func TestLassoNormalize(t *testing.T) {
	ab := ab2()
	l := MustLasso(FromNames(ab, "a", "b"), FromNames(ab, "a", "b", "a", "b"))
	n := l.Normalize()
	if len(n.Loop) != 2 || len(n.Prefix) != 0 {
		t.Errorf("Normalize: got prefix %d loop %d, want 0/2", len(n.Prefix), len(n.Loop))
	}
	if !n.Equal(l) {
		t.Error("Normalize changed the denoted word")
	}
}

func TestCantorDistance(t *testing.T) {
	ab := ab2()
	x := MustLasso(nil, FromNames(ab, "a"))
	y := MustLasso(FromNames(ab, "a", "a"), FromNames(ab, "b"))
	// common prefix: a a, length 2 → d = 1/3
	if got := x.CantorDistance(y); got != 1.0/3.0 {
		t.Errorf("d = %v, want 1/3", got)
	}
	if got := x.CantorDistance(x); got != 0 {
		t.Errorf("d(x,x) = %v, want 0", got)
	}
	// Metric axioms on a few sampled triples: symmetry and the
	// ultrametric inequality d(x,z) ≤ max(d(x,y), d(y,z)).
	z := MustLasso(FromNames(ab, "a"), FromNames(ab, "b", "a"))
	pts := []Lasso{x, y, z}
	for _, p := range pts {
		for _, q := range pts {
			if p.CantorDistance(q) != q.CantorDistance(p) {
				t.Error("distance not symmetric")
			}
			for _, r := range pts {
				dxz := p.CantorDistance(r)
				m := p.CantorDistance(q)
				if d2 := q.CantorDistance(r); d2 > m {
					m = d2
				}
				if dxz > m+1e-12 {
					t.Errorf("ultrametric inequality violated: %v > %v", dxz, m)
				}
			}
		}
	}
}

func TestNewLassoRejectsEmptyLoop(t *testing.T) {
	if _, err := NewLasso(nil, nil); err == nil {
		t.Error("NewLasso accepted an empty loop")
	}
	if (Lasso{}).Valid() {
		t.Error("zero Lasso is Valid")
	}
}

func TestLassoSuffixAgreesWithAt(t *testing.T) {
	ab := ab2()
	l := MustLasso(FromNames(ab, "a", "b", "b"), FromNames(ab, "b", "a", "a"))
	for n := 0; n < 12; n++ {
		s := l.Suffix(n)
		for i := 0; i < 9; i++ {
			if s.At(i) != l.At(n+i) {
				t.Fatalf("Suffix(%d).At(%d) != At(%d)", n, i, n+i)
			}
		}
	}
}

func TestQuickPrefixOfLenMatchesAt(t *testing.T) {
	ab := ab2()
	f := func(pfx []bool, loop []bool, nRaw uint8) bool {
		if len(loop) == 0 {
			loop = []bool{true}
		}
		toWord := func(bs []bool) Word {
			w := make(Word, len(bs))
			for i, b := range bs {
				if b {
					w[i] = ab.Symbol("a")
				} else {
					w[i] = ab.Symbol("b")
				}
			}
			return w
		}
		l := MustLasso(toWord(pfx), toWord(loop))
		n := int(nRaw % 40)
		p := l.PrefixOfLen(n)
		for i := 0; i < n; i++ {
			if p[i] != l.At(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNormalizePreservesWord(t *testing.T) {
	ab := ab2()
	f := func(pfx []bool, loop []bool) bool {
		if len(loop) == 0 {
			loop = []bool{false}
		}
		toWord := func(bs []bool) Word {
			w := make(Word, len(bs))
			for i, b := range bs {
				if b {
					w[i] = ab.Symbol("a")
				} else {
					w[i] = ab.Symbol("b")
				}
			}
			return w
		}
		l := MustLasso(toWord(pfx), toWord(loop))
		return l.Normalize().Equal(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
