package mc

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"relive/internal/interrupt"
	"relive/internal/word"
)

// Config parameterizes one sampling run. The zero value is not valid;
// use Defaulted (or fill every field) before Run.
type Config struct {
	// Seed drives every random choice. Each sample index derives its
	// own splitmix64 stream from (Seed, index), so the run's outcome is
	// a deterministic function of (Seed, Samples, Steps, Confidence)
	// alone — bit-identical for any Workers value.
	Seed int64
	// Samples is the number of independent random walks.
	Samples int
	// Steps is the length of each walk; the second half must settle
	// into a bottom SCC for the sample to count.
	Steps int
	// Confidence is the two-sided level of the reported interval,
	// e.g. 0.99.
	Confidence float64
	// Workers bounds sampling parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

// Default sampling budget: enough walks for a meaningful interval at
// 0.99 (400 all-hit samples put the Clopper–Pearson lower bound above
// 0.986) on graphs whose bottom SCCs are reached within a few hundred
// steps.
const (
	DefaultSamples    = 400
	DefaultSteps      = 256
	DefaultConfidence = 0.99
)

// Defaulted fills unset (zero or out-of-range) fields with the package
// defaults and returns the result.
func (c Config) Defaulted() Config {
	if c.Samples <= 0 {
		c.Samples = DefaultSamples
	}
	if c.Steps <= 0 {
		c.Steps = DefaultSteps
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = DefaultConfidence
	}
	return c
}

// Counterexample is a sampled run violating the property: a genuine
// behavior of the target (the walk actually happened in the graph), so
// a "fails" verdict is sound, not statistical.
type Counterexample struct {
	// Index is the sample that produced the lasso — the lowest-index
	// violating sample, independent of worker scheduling.
	Index int
	// Lasso is the violating behavior: sampled prefix · fair covering
	// cycle of the bottom SCC the walk settled in.
	Lasso word.Lasso
}

// Result aggregates one sampling run.
type Result struct {
	// Samples is the number of walks taken, Settled how many closed a
	// bottom-SCC lasso within the step budget, Hits how many settled
	// samples satisfied the property.
	Samples, Settled, Hits int
	// Estimate is Hits/Settled (0 when nothing settled).
	Estimate float64
	// Low, High bound the satisfaction probability at the configured
	// confidence (Clopper–Pearson over the settled samples).
	Low, High float64
	// Counterexample is the lowest-index settled violating sample, nil
	// when every settled sample hit.
	Counterexample *Counterexample
}

// Run samples cfg.Samples random walks of the implicit graph t,
// detects bottom-SCC lassos, evaluates each settled lasso with eval,
// and returns counts, the Clopper–Pearson interval, and the first
// violating sample. eval must be safe for concurrent use (it is called
// from Workers goroutines) and deterministic; Run's result is then a
// deterministic function of (t, Seed, Samples, Steps, Confidence),
// independent of Workers and scheduling. The context is polled
// cooperatively inside every walk.
func Run(ctx context.Context, t Target, cfg Config, eval func(word.Lasso) (bool, error)) (*Result, error) {
	cfg = cfg.Defaulted()
	if t.NumStates() == 0 {
		return nil, fmt.Errorf("mc: target has no states")
	}
	type slot struct {
		settled bool
		hit     bool
		lasso   word.Lasso
		err     error
	}
	slots := make([]slot, cfg.Samples)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Samples {
		workers = cfg.Samples
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var tick interrupt.Tick
			for {
				i := int(next.Add(1) - 1)
				if i >= cfg.Samples {
					return
				}
				rng := newSplitMix(cfg.Seed, i)
				l, settled, err := sample(ctx, t, &tick, &rng, cfg.Steps)
				if err != nil {
					slots[i].err = err
					return
				}
				if !settled {
					continue
				}
				hit, err := eval(l)
				if err != nil {
					slots[i].err = fmt.Errorf("mc: evaluating sample %d: %w", i, err)
					return
				}
				slots[i] = slot{settled: true, hit: hit, lasso: l}
			}
		}()
	}
	wg.Wait()
	// Aggregate in index order so counts and the chosen counterexample
	// are independent of which worker ran which sample. A deterministic
	// eval error outranks the cancellation that tore other workers down.
	var firstErr, firstCtxErr error
	res := &Result{Samples: cfg.Samples}
	for i := range slots {
		if err := slots[i].err; err != nil {
			if isCtxErr(err) {
				if firstCtxErr == nil {
					firstCtxErr = err
				}
			} else if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if !slots[i].settled {
			continue
		}
		res.Settled++
		if slots[i].hit {
			res.Hits++
		} else if res.Counterexample == nil {
			res.Counterexample = &Counterexample{Index: i, Lasso: slots[i].lasso}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if firstCtxErr != nil {
		return nil, firstCtxErr
	}
	if res.Settled > 0 {
		res.Estimate = float64(res.Hits) / float64(res.Settled)
	}
	res.Low, res.High = ClopperPearson(res.Hits, res.Settled, cfg.Confidence)
	return res, nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// sample takes one steps-long uniform random walk of t and, when its
// second half has settled into a bottom SCC (the visited tail is closed
// under every enabled transition — being the tail of one walk it is
// strongly connected, hence a bottom SCC), returns the behavior
// "sampled prefix · fair covering cycle^ω". A walk that dies at a dead
// end or has not settled yields settled=false; on the trimmed systems
// core hands the engine, dead ends cannot occur.
func sample(ctx context.Context, t Target, tick *interrupt.Tick, rng *splitMix, steps int) (word.Lasso, bool, error) {
	half := steps / 2
	if half == 0 {
		return word.Lasso{}, false, nil
	}
	froms := make([]int32, 0, steps)
	syms := make(word.Word, 0, steps)
	cur := t.Start()
	last := cur
	for i := 0; i < steps; i++ {
		if err := tick.Poll(ctx); err != nil {
			return word.Lasso{}, false, err
		}
		d := t.Degree(cur)
		if d == 0 {
			return word.Lasso{}, false, nil
		}
		to, sym := t.Edge(cur, rng.intn(d))
		froms = append(froms, int32(cur))
		syms = append(syms, sym)
		cur = to
	}
	last = cur
	// States visited in the second half of the walk.
	inSet := make([]bool, t.NumStates())
	var members []int32
	add := func(s int32) {
		if !inSet[s] {
			inSet[s] = true
			members = append(members, s)
		}
	}
	for _, s := range froms[half:] {
		add(s)
	}
	add(int32(last))
	// Closed under every enabled transition?
	for _, s := range members {
		d := t.Degree(int(s))
		for i := 0; i < d; i++ {
			to, _ := t.Edge(int(s), i)
			if !inSet[to] {
				return word.Lasso{}, false, nil
			}
		}
	}
	prefix := make(word.Word, half)
	copy(prefix, syms[:half])
	loop, ok := coveringCycle(t, int(froms[half]), inSet, members)
	if !ok {
		return word.Lasso{}, false, nil
	}
	return word.MustLasso(prefix, loop), true, nil
}

// coveringCycle returns the action word of a cycle from start that
// traverses every transition inside the closed set — the canonical
// strongly fair sweep a uniform random run performs infinitely often
// almost surely. Deterministic: the sweep repeatedly takes the
// BFS-shortest path (successors in index order) to the next untraversed
// transition.
func coveringCycle(t Target, start int, inSet []bool, members []int32) (word.Word, bool) {
	remaining := map[int64]bool{}
	for _, s := range members {
		d := t.Degree(int(s))
		for i := 0; i < d; i++ {
			remaining[edgeKey(int(s), i)] = true
		}
	}
	if len(remaining) == 0 {
		return nil, false
	}
	var out word.Word
	cur := start
	for len(remaining) > 0 {
		path, ok := pathToEdge(t, cur, inSet, remaining)
		if !ok {
			return nil, false // cannot happen in a closed SC set
		}
		for _, st := range path {
			to, sym := t.Edge(st.from, st.i)
			out = append(out, sym)
			delete(remaining, edgeKey(st.from, st.i))
			cur = to
		}
	}
	back, ok := pathToState(t, cur, inSet, start)
	if !ok {
		return nil, false
	}
	for _, st := range back {
		_, sym := t.Edge(st.from, st.i)
		out = append(out, sym)
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

func edgeKey(s, i int) int64 { return int64(s)<<32 | int64(i) }

type pathStep struct {
	from, i int
}

// pathToEdge returns the steps of a shortest walk from cur that ends by
// traversing some transition in want, staying inside the set.
func pathToEdge(t Target, cur int, inSet []bool, want map[int64]bool) ([]pathStep, bool) {
	type entry struct {
		state  int
		parent int
		step   pathStep
	}
	queue := []entry{{state: cur, parent: -1}}
	seen := map[int]bool{cur: true}
	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi].state
		d := t.Degree(st)
		for i := 0; i < d; i++ {
			to, _ := t.Edge(st, i)
			if !inSet[to] {
				continue
			}
			if want[edgeKey(st, i)] {
				path := []pathStep{{from: st, i: i}}
				for j := qi; queue[j].parent != -1; j = queue[j].parent {
					path = append(path, queue[j].step)
				}
				reverse(path)
				return path, true
			}
			if !seen[to] {
				seen[to] = true
				queue = append(queue, entry{state: to, parent: qi, step: pathStep{from: st, i: i}})
			}
		}
	}
	return nil, false
}

// pathToState returns the steps of a shortest walk from cur to goal
// inside the set (empty when cur == goal).
func pathToState(t Target, cur int, inSet []bool, goal int) ([]pathStep, bool) {
	if cur == goal {
		return nil, true
	}
	type entry struct {
		state  int
		parent int
		step   pathStep
	}
	queue := []entry{{state: cur, parent: -1}}
	seen := map[int]bool{cur: true}
	for qi := 0; qi < len(queue); qi++ {
		st := queue[qi].state
		d := t.Degree(st)
		for i := 0; i < d; i++ {
			to, _ := t.Edge(st, i)
			if !inSet[to] || seen[to] {
				continue
			}
			if to == goal {
				path := []pathStep{{from: st, i: i}}
				for j := qi; queue[j].parent != -1; j = queue[j].parent {
					path = append(path, queue[j].step)
				}
				reverse(path)
				return path, true
			}
			seen[to] = true
			queue = append(queue, entry{state: to, parent: qi, step: pathStep{from: st, i: i}})
		}
	}
	return nil, false
}

func reverse(p []pathStep) {
	for l, r := 0, len(p)-1; l < r; l, r = l+1, r-1 {
		p[l], p[r] = p[r], p[l]
	}
}

// splitMix is the per-sample PRNG: a splitmix64 stream whose state is
// derived from (seed, sample index) alone, so sample i's walk is the
// same no matter which worker takes it.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64, index int) splitMix {
	// Decorrelate neighboring indices by running the index through one
	// splitmix round before mixing with the seed.
	x := (uint64(index) + 1) * 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return splitMix{s: uint64(seed) ^ (x ^ (x >> 31))}
}

func (p *splitMix) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n) by the multiply-shift reduction
// (the ~n/2⁶⁴ bias is irrelevant against sampling noise; determinism is
// what matters).
func (p *splitMix) intn(n int) int {
	hi, _ := bits.Mul64(p.next(), uint64(n))
	return int(hi)
}
