// Package mc is the statistical relative-liveness engine: massively
// parallel random-walk sampling over an *implicit* transition graph,
// streaming bottom-SCC lasso detection with on-the-fly property
// evaluation, and confidence-interval verdicts (Wilson and
// Clopper–Pearson). It realizes the paper's Section 9 outlook —
// relative liveness "informally says: almost all computations satisfy
// the property" — as a sampling engine: under the uniform random
// scheduler a run of a finite-state system almost surely falls into a
// bottom SCC and sweeps it strongly fairly, so the frequency with which
// sampled runs satisfy P estimates the probability that a random run
// does, whose exact counterpart is "all strongly fair runs satisfy P"
// (core.AllFairRunsSatisfy). Verdicts are confidence intervals, never
// claimed exact; sampled counterexamples are genuine behaviors of the
// system and therefore sound.
package mc

import (
	"fmt"

	"relive/internal/alphabet"
	"relive/internal/ts"
)

// Target is the implicit transition graph the sampler walks: successor
// callbacks only, so the engine never materializes a product or even
// requires the graph to exist in memory. States are dense ints in
// [0, NumStates); the transitions of a state are indexed 0..Degree-1 in
// a fixed deterministic order (the same (state, i) must always yield
// the same successor — sampling determinism depends on it).
type Target interface {
	// NumStates bounds the state space (used to size visited sets).
	NumStates() int
	// Start is the initial state.
	Start() int
	// Degree returns the number of outgoing transitions of s.
	Degree(s int) int
	// Edge returns the i-th outgoing transition of s (i < Degree(s)).
	Edge(s, i int) (to int, sym alphabet.Symbol)
}

// SystemTarget adapts a ts.System to the Target interface in CSR form:
// one flat successor array grouped by source state, built once, with
// per-step successor lookup O(1) and allocation-free. Walk a *trimmed*
// system (core trims before sampling): every state then has at least
// one successor, so walks never die at a dead end, and trimming
// preserves behaviors, so every sampled lasso is a behavior of the
// original system.
type SystemTarget struct {
	rowStart []int32 // len NumStates+1; successors of s are rows[rowStart[s]:rowStart[s+1]]
	to       []int32
	sym      []alphabet.Symbol
	start    int
}

// NewSystemTarget compiles sys into CSR successor form. The successor
// order within a state follows sys.Edges() order, so the adapter is a
// deterministic function of the system's structure.
func NewSystemTarget(sys *ts.System) (*SystemTarget, error) {
	if sys.Initial() < 0 {
		return nil, fmt.Errorf("mc: system has no initial state")
	}
	n := sys.NumStates()
	edges := sys.Edges()
	t := &SystemTarget{
		rowStart: make([]int32, n+1),
		to:       make([]int32, len(edges)),
		sym:      make([]alphabet.Symbol, len(edges)),
		start:    int(sys.Initial()),
	}
	for _, e := range edges {
		t.rowStart[int(e.From)+1]++
	}
	for s := 0; s < n; s++ {
		t.rowStart[s+1] += t.rowStart[s]
	}
	cursor := make([]int32, n)
	copy(cursor, t.rowStart[:n])
	for _, e := range edges {
		i := cursor[e.From]
		t.to[i] = int32(e.To)
		t.sym[i] = e.Sym
		cursor[e.From]++
	}
	return t, nil
}

// NumStates implements Target.
func (t *SystemTarget) NumStates() int { return len(t.rowStart) - 1 }

// Start implements Target.
func (t *SystemTarget) Start() int { return t.start }

// Degree implements Target.
func (t *SystemTarget) Degree(s int) int { return int(t.rowStart[s+1] - t.rowStart[s]) }

// Edge implements Target.
func (t *SystemTarget) Edge(s, i int) (int, alphabet.Symbol) {
	j := t.rowStart[s] + int32(i)
	return int(t.to[j]), t.sym[j]
}
