package mc

import "math"

// Binomial confidence intervals for the sampled satisfaction
// probability. Two standard constructions are provided: the Wilson
// score interval (cheap, good coverage away from the boundary) and the
// Clopper–Pearson "exact" interval (conservative — coverage is at
// least the nominal level for every true p, which is the guarantee the
// differential battery asserts against exact verdicts). Reports use
// Clopper–Pearson; Wilson is exported for callers that prefer the
// tighter interval.

// Wilson returns the Wilson score interval for hits successes out of n
// trials at the given two-sided confidence level (e.g. 0.99).
func Wilson(hits, n int, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	z := math.Sqrt2 * math.Erfinv(confidence)
	p := float64(hits) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := p + z*z/(2*nn)
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn))
	lo = (center - half) / denom
	hi = (center + half) / denom
	return clamp01(lo), clamp01(hi)
}

// ClopperPearson returns the Clopper–Pearson exact interval for hits
// successes out of n trials at the given two-sided confidence level.
// The bounds are quantiles of Beta distributions:
//
//	lo = BetaInv(α/2;   hits,   n-hits+1)   (0 when hits == 0)
//	hi = BetaInv(1-α/2; hits+1, n-hits)     (1 when hits == n)
//
// In the all-hits regime the lower bound is α^(1/n), strictly
// increasing in n — the honest form of "more samples ⇒ tighter CI"
// that the metamorphic budget-monotonicity law asserts.
func ClopperPearson(hits, n int, confidence float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	alpha := 1 - confidence
	if hits <= 0 {
		lo = 0
	} else {
		lo = betaInv(alpha/2, float64(hits), float64(n-hits+1))
	}
	if hits >= n {
		hi = 1
	} else {
		hi = betaInv(1-alpha/2, float64(hits+1), float64(n-hits))
	}
	return clamp01(lo), clamp01(hi)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// betaInv returns x with I_x(a, b) = p (the inverse regularized
// incomplete beta function) by bisection: regIncBeta is monotone
// increasing in x, and 60 halvings put the error below 1e-15.
func betaInv(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if regIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta computes the regularized incomplete beta function
// I_x(a, b) via the standard continued-fraction expansion, using the
// symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the fraction in its
// fast-converging region.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - math.Exp(lbeta-la-lb+a*math.Log(x)+b*math.Log(1-x))*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
