package mc

import (
	"context"
	"math"
	"reflect"
	"testing"

	"relive/internal/interrupt"
	"relive/internal/oracle"
	"relive/internal/ts"
	"relive/internal/word"
)

// serverText is the paper's Figure 2 server: from busy both result and
// reject lead back to idle, so □◇result holds on almost all random runs
// but not on the adversarial all-reject schedule.
const serverText = `init idle
idle request busy
busy result idle
busy reject idle
`

// brokenText is the Figure 3 variant where reject enters a sink loop
// that never produces result again.
const brokenText = `init broken
broken request busy
busy result broken
busy reject stuck
stuck no stuck
`

func mustSystem(t *testing.T, text string) *ts.System {
	t.Helper()
	sys, err := ts.ParseString(text)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return sys
}

func mustTarget(t *testing.T, sys *ts.System) *SystemTarget {
	t.Helper()
	tgt, err := NewSystemTarget(sys)
	if err != nil {
		t.Fatalf("NewSystemTarget: %v", err)
	}
	return tgt
}

// loopHas reports whether the lasso's loop contains the named action —
// the □◇ check specialized to the ultimately-periodic words the sampler
// produces.
func loopHas(sys *ts.System, name string) func(word.Lasso) (bool, error) {
	sym := sys.Alphabet().Symbol(name)
	return func(l word.Lasso) (bool, error) {
		for _, s := range l.Loop {
			if s == sym {
				return true, nil
			}
		}
		return false, nil
	}
}

func TestSystemTargetMatchesEdges(t *testing.T) {
	sys := mustSystem(t, brokenText)
	tgt := mustTarget(t, sys)
	if tgt.NumStates() != sys.NumStates() {
		t.Fatalf("NumStates = %d, want %d", tgt.NumStates(), sys.NumStates())
	}
	if tgt.Start() != int(sys.Initial()) {
		t.Fatalf("Start = %d, want %d", tgt.Start(), sys.Initial())
	}
	// Every system edge appears exactly once, grouped by source in
	// sys.Edges() order.
	type edge struct {
		from, to int
		sym      int
	}
	var fromTarget []edge
	total := 0
	for s := 0; s < tgt.NumStates(); s++ {
		d := tgt.Degree(s)
		total += d
		for i := 0; i < d; i++ {
			to, sym := tgt.Edge(s, i)
			fromTarget = append(fromTarget, edge{from: s, to: to, sym: int(sym)})
		}
	}
	edges := sys.Edges()
	if total != len(edges) {
		t.Fatalf("target has %d edges, system %d", total, len(edges))
	}
	want := map[edge]int{}
	for _, e := range edges {
		want[edge{from: int(e.From), to: int(e.To), sym: int(e.Sym)}]++
	}
	for _, e := range fromTarget {
		if want[e] == 0 {
			t.Fatalf("target edge %+v not in system", e)
		}
		want[e]--
	}
}

func TestNewSystemTargetRejectsNoInitial(t *testing.T) {
	sys := ts.New(mustSystem(t, serverText).Alphabet())
	if _, err := NewSystemTarget(sys); err == nil {
		t.Fatalf("want error for system without initial state")
	}
}

// TestRunDeterministicAcrossWorkers is the engine's core contract: the
// result — counts, interval, and chosen counterexample — is a function
// of (target, Seed, Samples, Steps, Confidence) alone, bit-identical
// for every worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, text := range []string{serverText, brokenText} {
		sys := mustSystem(t, text)
		tgt := mustTarget(t, sys)
		eval := loopHas(sys, "result")
		var base *Result
		for _, workers := range []int{1, 2, 3, 8} {
			cfg := Config{Seed: 7, Samples: 120, Steps: 64, Confidence: 0.95, Workers: workers}
			res, err := Run(context.Background(), tgt, cfg, eval)
			if err != nil {
				t.Fatalf("Run(workers=%d): %v", workers, err)
			}
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(res, base) {
				t.Fatalf("workers=%d: result diverged:\n got %+v\nwant %+v", workers, res, base)
			}
		}
	}
}

func TestRunVerdictsOnPaperServers(t *testing.T) {
	correct := mustSystem(t, serverText)
	res, err := Run(context.Background(), mustTarget(t, correct),
		Config{Seed: 1, Samples: 200, Steps: 64}, loopHas(correct, "result"))
	if err != nil {
		t.Fatalf("Run(correct): %v", err)
	}
	if res.Settled == 0 || res.Hits != res.Settled || res.Counterexample != nil {
		t.Fatalf("correct server: want all settled samples to hit, got %+v", res)
	}
	if res.Low <= 0.9 || res.High != 1 {
		t.Fatalf("correct server: implausible interval [%v, %v]", res.Low, res.High)
	}

	broken := mustSystem(t, brokenText)
	res, err = Run(context.Background(), mustTarget(t, broken),
		Config{Seed: 1, Samples: 200, Steps: 64}, loopHas(broken, "result"))
	if err != nil {
		t.Fatalf("Run(broken): %v", err)
	}
	if res.Counterexample == nil {
		t.Fatalf("broken server: want a counterexample, got %+v", res)
	}
	if !oracle.IsBehavior(broken, res.Counterexample.Lasso) {
		t.Fatalf("counterexample %v is not a behavior of the system",
			res.Counterexample.Lasso.String(broken.Alphabet()))
	}
	if hit, _ := loopHas(broken, "result")(res.Counterexample.Lasso); hit {
		t.Fatalf("counterexample loop contains result: %v",
			res.Counterexample.Lasso.String(broken.Alphabet()))
	}
}

// TestSampledLassosAreBehaviors drives sample directly over many seeds:
// every settled lasso must be a genuine behavior of the system (the
// soundness half of the engine), and its loop must traverse every
// transition of the bottom SCC it settled in (the strong-fairness
// sweep).
func TestSampledLassosAreBehaviors(t *testing.T) {
	sys := mustSystem(t, brokenText)
	tgt := mustTarget(t, sys)
	settled := 0
	for i := 0; i < 200; i++ {
		rng := newSplitMix(99, i)
		var tick interrupt.Tick
		l, ok, err := sample(context.Background(), tgt, &tick, &rng, 64)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if !ok {
			continue
		}
		settled++
		if !oracle.IsBehavior(sys, l) {
			t.Fatalf("sample %d: lasso %v is not a behavior", i, l.String(sys.Alphabet()))
		}
	}
	if settled == 0 {
		t.Fatalf("no sample settled in 200 walks of a 4-state system")
	}
}

func TestCoveringCycleSweepsEveryTransition(t *testing.T) {
	sys := mustSystem(t, serverText)
	tgt := mustTarget(t, sys)
	// The whole system is one bottom SCC; sweep from every state.
	n := tgt.NumStates()
	inSet := make([]bool, n)
	members := make([]int32, n)
	for s := 0; s < n; s++ {
		inSet[s] = true
		members[s] = int32(s)
	}
	for start := 0; start < n; start++ {
		loop, ok := coveringCycle(tgt, start, inSet, members)
		if !ok {
			t.Fatalf("coveringCycle from %d failed", start)
		}
		// Replay the loop as edge choices: at each state pick the first
		// untraversed outgoing edge with the emitted symbol; it must
		// exist, visit every edge, and return to start.
		cur := start
		traversed := map[int64]bool{}
		for _, sym := range loop {
			found := false
			d := tgt.Degree(cur)
			for i := 0; i < d; i++ {
				to, s := tgt.Edge(cur, i)
				if s == sym && !found {
					// Deterministic systems: symbol determines the edge.
					traversed[edgeKey(cur, i)] = true
					cur = to
					found = true
				}
			}
			if !found {
				t.Fatalf("loop symbol %v not enabled at state %d", sym, cur)
			}
		}
		if cur != start {
			t.Fatalf("covering cycle from %d ends at %d", start, cur)
		}
		total := 0
		for s := 0; s < n; s++ {
			total += tgt.Degree(s)
		}
		if len(traversed) != total {
			t.Fatalf("cycle from %d traversed %d/%d transitions", start, len(traversed), total)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	sys := mustSystem(t, serverText)
	tgt := mustTarget(t, sys)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, tgt, Config{Seed: 1, Samples: 50000, Steps: 4096}, loopHas(sys, "result"))
	if err == nil || !isCtxErr(err) {
		t.Fatalf("want context error, got %v", err)
	}
}

func TestClopperPearsonKnownValues(t *testing.T) {
	// All-hits lower bound is (α/2)^(1/n); zero-hits upper bound is its
	// mirror 1-(α/2)^(1/n).
	for _, n := range []int{10, 100, 400} {
		lo, hi := ClopperPearson(n, n, 0.99)
		want := math.Pow(0.005, 1/float64(n))
		if math.Abs(lo-want) > 1e-9 || hi != 1 {
			t.Fatalf("CP(%d/%d): [%v, %v], want lo≈%v hi=1", n, n, lo, hi, want)
		}
		lo, hi = ClopperPearson(0, n, 0.99)
		if lo != 0 || math.Abs(hi-(1-want)) > 1e-9 {
			t.Fatalf("CP(0/%d): [%v, %v], want lo=0 hi≈%v", n, lo, hi, 1-want)
		}
	}
	// Degenerate inputs.
	if lo, hi := ClopperPearson(0, 0, 0.99); lo != 0 || hi != 1 {
		t.Fatalf("CP(0/0) = [%v, %v], want [0, 1]", lo, hi)
	}
	// Interior case brackets the point estimate and is conservative
	// (contains the Wilson interval).
	lo, hi := ClopperPearson(30, 40, 0.95)
	if !(lo < 0.75 && 0.75 < hi) {
		t.Fatalf("CP(30/40) = [%v, %v] does not bracket 0.75", lo, hi)
	}
	wlo, whi := Wilson(30, 40, 0.95)
	if lo > wlo+1e-12 || hi < whi-1e-12 {
		t.Fatalf("CP [%v, %v] narrower than Wilson [%v, %v]", lo, hi, wlo, whi)
	}
}

// TestAllHitsLowerBoundMonotone pins the honest form of "more samples ⇒
// tighter interval": in the all-hits regime the Clopper–Pearson lower
// bound α^{1/n} strictly increases with n.
func TestAllHitsLowerBoundMonotone(t *testing.T) {
	prev := -1.0
	for _, n := range []int{1, 2, 5, 10, 50, 100, 400, 1000} {
		lo, _ := ClopperPearson(n, n, 0.99)
		if lo <= prev {
			t.Fatalf("all-hits lower bound not increasing at n=%d: %v <= %v", n, lo, prev)
		}
		prev = lo
	}
}

func TestWilsonSanity(t *testing.T) {
	if lo, hi := Wilson(0, 0, 0.99); lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0/0) = [%v, %v], want [0, 1]", lo, hi)
	}
	lo, hi := Wilson(50, 100, 0.95)
	if !(0 < lo && lo < 0.5 && 0.5 < hi && hi < 1) {
		t.Fatalf("Wilson(50/100) = [%v, %v] implausible", lo, hi)
	}
	// Symmetric counts give a symmetric interval around 1/2.
	if math.Abs((0.5-lo)-(hi-0.5)) > 1e-12 {
		t.Fatalf("Wilson(50/100) = [%v, %v] not symmetric", lo, hi)
	}
}

func TestRegIncBetaIdentities(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, tc := range []struct{ a, b, x float64 }{
		{2, 5, 0.3}, {7, 3, 0.8}, {0.5, 0.5, 0.2}, {10, 10, 0.5},
	} {
		l := regIncBeta(tc.a, tc.b, tc.x)
		r := 1 - regIncBeta(tc.b, tc.a, 1-tc.x)
		if math.Abs(l-r) > 1e-10 {
			t.Fatalf("symmetry broken at (a=%v, b=%v, x=%v): %v vs %v", tc.a, tc.b, tc.x, l, r)
		}
	}
	// betaInv is the inverse: I(a, b, betaInv(p, a, b)) ≈ p.
	for _, tc := range []struct{ p, a, b float64 }{
		{0.025, 3, 8}, {0.5, 5, 5}, {0.975, 8, 3}, {0.005, 400, 1},
	} {
		x := betaInv(tc.p, tc.a, tc.b)
		if got := regIncBeta(tc.a, tc.b, x); math.Abs(got-tc.p) > 1e-9 {
			t.Fatalf("betaInv roundtrip (p=%v, a=%v, b=%v): I = %v", tc.p, tc.a, tc.b, got)
		}
	}
}

func TestSplitMixStreamsDecorrelated(t *testing.T) {
	// Adjacent indices must not produce shifted copies of one stream.
	a := newSplitMix(42, 0)
	b := newSplitMix(42, 1)
	same := 0
	const k = 64
	av := make([]uint64, k)
	for i := range av {
		av[i] = a.next()
	}
	for i := 0; i < k; i++ {
		if b.next() == av[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for indices 0 and 1 collide in %d/%d draws", same, k)
	}
}

func TestDefaulted(t *testing.T) {
	c := Config{}.Defaulted()
	if c.Samples != DefaultSamples || c.Steps != DefaultSteps || c.Confidence != DefaultConfidence {
		t.Fatalf("Defaulted() = %+v", c)
	}
	c = Config{Samples: 7, Steps: 9, Confidence: 0.5, Seed: 3, Workers: 2}.Defaulted()
	if c.Samples != 7 || c.Steps != 9 || c.Confidence != 0.5 || c.Seed != 3 || c.Workers != 2 {
		t.Fatalf("Defaulted() clobbered explicit fields: %+v", c)
	}
}
