package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Structural cache keys. A system is keyed by the canonical text of its
// parse (ts.FormatString sorts states and transitions and renumbers
// deterministically), so two requests spelling the same system with
// reordered lines or different state names still share one cache entry
// — and, crucially, the system cached under a key is re-parsed from
// that canonical text, so its symbol numbering is a function of the key
// alone and every artifact built against it is interchangeable across
// requests. LTL properties are keyed by the canonical rendering of
// their parse tree; ω-regex properties by their raw text.

// hashKey hashes length-prefixed parts into a fixed-size hex key, so no
// concatenation of parts can collide with a different split of the same
// bytes.
func hashKey(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
