package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"relive/internal/core"
	"relive/internal/fairness"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/serve"
	"relive/internal/store"
	"relive/internal/ts"
)

// The /v1/check/fair-abstract side of the e2e harness: verdicts equal
// direct core calls, replays from the report LRU and the persistent
// store are bit-identical to the cold run, mid-check cancellation
// unwinds without leaking goroutines, and the endpoint participates in
// admission control (429 shedding) like every other check route.

// fairAbstractFixture is the paper example under fairness: strong
// transition fairness forces busy->result infinitely often, so
// "G F ok" holds strongly but fails weakly (the request/reject loop is
// weakly fair and its image is req^ω).
func fairAbstractFixture(fairKind string) serve.FairAbstractRequest {
	return serve.FairAbstractRequest{
		System:   serverText,
		Hom:      "request=>req, result=>ok, reject=>",
		Fairness: fairKind,
		Eta:      "G F ok",
	}
}

// slowFairAbstract is a fair-abstract request whose cold check takes
// long enough for mid-flight cancellation and shedding to land.
func slowFairAbstract(noCache bool, timeoutMS int) serve.FairAbstractRequest {
	return serve.FairAbstractRequest{
		System:    bigSystemText(4000),
		Hom:       "a=>a, b=>b, c=>c",
		Fairness:  "strong",
		Eta:       slowLTL,
		TimeoutMS: timeoutMS,
		NoCache:   noCache,
	}
}

// TestFairAbstractEndpointVerdicts: served verdicts equal direct core
// calls for both fairness notions on the paper fixture.
func TestFairAbstractEndpointVerdicts(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	sys, err := ts.ParseString(serverText)
	if err != nil {
		t.Fatal(err)
	}
	for name, kind := range map[string]fairness.Kind{"strong": fairness.Strong, "weak": fairness.Weak} {
		req := fairAbstractFixture(name)
		h, err := hom.Parse(sys.Alphabet(), req.Hom)
		if err != nil {
			t.Fatal(err)
		}
		eta, err := ltl.Parse(req.Eta)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.CheckFairAbstract(sys, h, kind, core.FromFormula(eta, ltl.Canonical(h.Dest())))
		if err != nil {
			t.Fatal(err)
		}
		status, _, body := postJSON(t, hs.URL+"/v1/check/fair-abstract", req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, status, body)
		}
		var rep core.FairAbstractReport
		decodeInto(t, body, &rep)
		if rep.Holds != want.Holds || rep.Fairness != want.Fairness {
			t.Fatalf("%s: served %+v, core %+v", name, rep, want)
		}
		if !rep.Holds && len(rep.AbstractLoop) == 0 {
			t.Fatalf("%s: violation reported without an abstract witness loop", name)
		}
	}
	// Sanity-pin the fixture's intended asymmetry so the test cannot go
	// vacuously green: strong holds, weak fails.
	var strong, weak core.FairAbstractReport
	_, _, body := postJSON(t, hs.URL+"/v1/check/fair-abstract", fairAbstractFixture("strong"))
	decodeInto(t, body, &strong)
	_, _, body = postJSON(t, hs.URL+"/v1/check/fair-abstract", fairAbstractFixture("weak"))
	decodeInto(t, body, &weak)
	if !strong.Holds || weak.Holds {
		t.Fatalf("fixture asymmetry lost: strong holds=%v, weak holds=%v", strong.Holds, weak.Holds)
	}
}

// TestFairAbstractCacheReplaysBitIdentical: the cold body, the
// report-LRU replay, and the persistent-store replay (a fresh server
// over the same volume, empty LRUs) are byte-identical; spelling
// changes still hit via structural keys; no_cache bypasses.
func TestFairAbstractCacheReplaysBitIdentical(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := serve.New(serve.Config{Store: st1})
	hs1 := httptest.NewServer(s1.Handler())
	defer hs1.Close()

	req := fairAbstractFixture("strong")
	status, hdr, cold := postJSON(t, hs1.URL+"/v1/check/fair-abstract", req)
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("cold: status %d header %q: %s", status, hdr, cold)
	}
	status, hdr, warm := postJSON(t, hs1.URL+"/v1/check/fair-abstract", req)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("report-LRU replay: status %d header %q", status, hdr)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("report-LRU replay differs from cold run:\ncold %s\nwarm %s", cold, warm)
	}
	if s1.Trace().Counters()["serve.cache.report_hits"] < 1 {
		t.Fatal("report-LRU hit not counted")
	}

	// Different spelling of the same system and formula: the structural
	// keys still hit the same report.
	respelled := req
	respelled.System = "# same system\n" + strings.ReplaceAll(serverText, "\n", "\n\n")
	respelled.Eta = "G (F (ok))"
	status, hdr, re := postJSON(t, hs1.URL+"/v1/check/fair-abstract", respelled)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("respelled: status %d header %q (want structural cache hit)", status, hdr)
	}
	if !bytes.Equal(cold, re) {
		t.Fatal("respelled hit differs from cold run")
	}

	status, hdr, _ = postJSON(t, hs1.URL+"/v1/check/fair-abstract",
		serve.FairAbstractRequest{System: req.System, Hom: req.Hom, Fairness: req.Fairness, Eta: req.Eta, NoCache: true})
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("no_cache: status %d header %q, want fresh miss", status, hdr)
	}

	// A brand-new process over the same volume: empty LRUs, warm store.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := serve.New(serve.Config{Store: st2})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	status, hdr, stored := postJSON(t, hs2.URL+"/v1/check/fair-abstract", req)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("store replay: status %d header %q", status, hdr)
	}
	if !bytes.Equal(cold, stored) {
		t.Fatalf("store replay differs from cold run:\ncold %s\nstore %s", cold, stored)
	}
	if s2.Trace().Counters()["serve.store.report_hits"] < 1 {
		t.Fatal("store hit not counted on the fresh server")
	}
	// The distinct fairness notion is a distinct key: the weak variant
	// must not replay the strong report.
	status, hdr, weak := postJSON(t, hs2.URL+"/v1/check/fair-abstract", fairAbstractFixture("weak"))
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("weak variant: status %d header %q, want a cold run", status, hdr)
	}
	if bytes.Equal(weak, cold) {
		t.Fatal("weak and strong verdicts share one cached body")
	}
}

// TestFairAbstractBadRequests: decode-time and parse-time rejections
// are 400 "bad_request" before any worker slot is spent.
func TestFairAbstractBadRequests(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{})
	cases := []struct {
		name string
		body string
	}{
		{"no hom", `{"system":"init s\ns a s\n","fairness":"strong","eta":"G a"}`},
		{"no fairness", `{"system":"init s\ns a s\n","hom":"a=>x","eta":"G x"}`},
		{"bad fairness", `{"system":"init s\ns a s\n","hom":"a=>x","fairness":"fair","eta":"G x"}`},
		{"no eta", `{"system":"init s\ns a s\n","hom":"a=>x","fairness":"weak"}`},
		{"bad hom letter", `{"system":"init s\ns a s\n","hom":"zzz=>x","fairness":"strong","eta":"G x"}`},
		{"bad eta", `{"system":"init s\ns a s\n","hom":"a=>x","fairness":"strong","eta":"G ("}`},
		{"concrete-letter eta", `{"system":"init s\ns a s\ns b s\n","hom":"a=>x, b=>","fairness":"strong","eta":"G F b"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/check/fair-abstract", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var er serve.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			// Σ'-normal-form violations surface from the check itself, so
			// they come back 500 "internal"; everything else is rejected at
			// decode/parse time with 400.
			if tc.name == "concrete-letter eta" {
				if resp.StatusCode == http.StatusOK {
					t.Fatalf("concrete-letter eta accepted: %+v", er)
				}
				return
			}
			if resp.StatusCode != http.StatusBadRequest || er.Kind != "bad_request" {
				t.Fatalf("status %d kind %q, want 400 bad_request", resp.StatusCode, er.Kind)
			}
		})
	}
	if got := s.Trace().Gauges()["serve.inflight"]; got != 0 {
		t.Fatalf("bad requests left %d inflight", got)
	}
}

// TestFairAbstractCancelMidFlight: dropping the connection mid-check
// cancels the fair-abstract pipeline cooperatively (it is ctx-plumbed
// through the kernels and the Streett search), and a storm of abandoned
// requests leaks no goroutines.
func TestFairAbstractCancelMidFlight(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{Workers: 4, QueueDepth: 200})
	data, _ := json.Marshal(slowFairAbstract(true, 0))

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/check/fair-abstract", bytes.NewReader(data))
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for s.Trace().Gauges()["serve.inflight"] < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite mid-flight cancel")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Trace().Counters()["serve.cancelled"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("serve.cancelled counter never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitFlightVerdict(t, s, "fair-abstract", "cancelled")

	// Abandoned-request storm: everything unwinds, no goroutine sticks.
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, ccancel := context.WithTimeout(context.Background(), time.Duration(2+i%20)*time.Millisecond)
			defer ccancel()
			r, _ := http.NewRequestWithContext(cctx, http.MethodPost, hs.URL+"/v1/check/fair-abstract", bytes.NewReader(data))
			if resp, err := http.DefaultClient.Do(r); err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+10 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d now=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after cancelled storm: %v", err)
	}
}

// TestFairAbstractSheds429: the endpoint sits behind the same bounded
// queue as every other check route.
func TestFairAbstractSheds429(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1})
	var got [8]int
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(slowFairAbstract(true, 300))
			resp, err := http.Post(hs.URL+"/v1/check/fair-abstract", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			got[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	var shed, served int
	for _, code := range got {
		switch code {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK, http.StatusGatewayTimeout:
			served++
		default:
			t.Fatalf("unexpected status %d (all: %v)", code, got)
		}
	}
	if shed == 0 || served == 0 {
		t.Fatalf("burst of 8 on capacity 2: shed=%d served=%d (%v)", shed, served, got)
	}
	if s.Trace().Counters()["serve.shed"] != int64(shed) {
		t.Fatalf("serve.shed = %d, want %d", s.Trace().Counters()["serve.shed"], shed)
	}
}
