package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"relive/internal/core"
	"relive/internal/ltl"
	"relive/internal/serve"
	"relive/internal/ts"
)

// The service-level end-to-end harness: every endpoint is exercised
// over real HTTP (httptest), responses are decoded from the wire, and
// verdicts are checked against direct core calls — the serving layer
// must add transport, caching, and admission without changing a single
// verdict.

// serverText is the paper's request/result example (rlcheck's fixture):
// against "G F result" relative liveness holds, relative safety and
// satisfaction fail.
const serverText = `
init idle
idle request busy
busy result idle
busy reject idle
`

// concreteText is the abstraction example from cmd/rlabstract.
const concreteText = `
init idle
idle request deciding
deciding accept granted
deciding deny denied
granted result idle
denied reject idle
`

// bigSystemText renders an n-state strongly connected system whose full
// check takes hundreds of milliseconds at n≈4000 — the knob the
// timeout, cancellation, shedding, and load tests turn.
func bigSystemText(n int) string {
	var b strings.Builder
	b.WriteString("init s0\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "s%d a s%d\n", i, (i+1)%n)
		fmt.Fprintf(&b, "s%d b s%d\n", i, (2*i+1)%n)
		fmt.Fprintf(&b, "s%d c s0\n", i)
	}
	return b.String()
}

const slowLTL = "G (a -> F (b U c))"

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// postJSON posts body (marshaled) and returns the status, the cache
// header, and the raw response bytes.
func postJSON(t *testing.T, url string, body any) (int, string, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get(serve.CacheHeader), buf.Bytes()
}

func decodeInto(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding %q: %v", data, err)
	}
}

// TestCheckEndpointsVerdicts: the four single-property endpoints return
// the same verdicts as direct core calls on the paper example.
func TestCheckEndpointsVerdicts(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	sys, err := ts.ParseString(serverText)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ltl.Parse("G F result")
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.CheckAll(sys, core.FromFormula(f, nil))
	if err != nil {
		t.Fatal(err)
	}
	req := serve.CheckRequest{System: serverText, LTL: "G F result"}

	status, _, body := postJSON(t, hs.URL+"/v1/check/all", req)
	if status != http.StatusOK {
		t.Fatalf("all: status %d: %s", status, body)
	}
	var rep core.Report
	decodeInto(t, body, &rep)
	if rep.Satisfied != want.Satisfied || rep.RelativeLiveness != want.RelativeLiveness ||
		rep.RelativeSafety != want.RelativeSafety {
		t.Fatalf("served report %+v, core %+v", rep, want)
	}

	status, _, body = postJSON(t, hs.URL+"/v1/check/liveness", req)
	var lr serve.LivenessResponse
	decodeInto(t, body, &lr)
	if status != http.StatusOK || lr.Holds != want.RelativeLiveness {
		t.Fatalf("liveness: status %d holds %v, want %v", status, lr.Holds, want.RelativeLiveness)
	}

	status, _, body = postJSON(t, hs.URL+"/v1/check/safety", req)
	var sr serve.SafetyResponse
	decodeInto(t, body, &sr)
	if status != http.StatusOK || sr.Holds != want.RelativeSafety {
		t.Fatalf("safety: status %d holds %v, want %v", status, sr.Holds, want.RelativeSafety)
	}
	if !sr.Holds && len(sr.ViolationLoop) == 0 {
		t.Fatal("safety violation reported without a witness loop")
	}

	status, _, body = postJSON(t, hs.URL+"/v1/check/satisfies", req)
	var tr serve.SatisfiesResponse
	decodeInto(t, body, &tr)
	if status != http.StatusOK || tr.Holds != want.Satisfied {
		t.Fatalf("satisfies: status %d holds %v, want %v", status, tr.Holds, want.Satisfied)
	}
	if !tr.Holds && len(tr.CounterexampleLoop) == 0 {
		t.Fatal("satisfaction failure reported without a counterexample loop")
	}
}

// TestOmegaPropertyEndpoint: the ω-regex route through the same
// endpoints.
func TestOmegaPropertyEndpoint(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	// All behaviors where every request is eventually followed by result
	// or reject: exactly the behaviors of the example system.
	req := serve.CheckRequest{System: serverText, Omega: "( request result | request reject ) ^w"}
	status, _, body := postJSON(t, hs.URL+"/v1/check/all", req)
	if status != http.StatusOK {
		t.Fatalf("omega check: status %d: %s", status, body)
	}
	var rep core.Report
	decodeInto(t, body, &rep)
	if !rep.Satisfied || !rep.RelativeLiveness || !rep.RelativeSafety {
		t.Fatalf("system must satisfy its own behavior language: %+v", rep)
	}
}

// TestPortfolioEndpoint: one system, several properties, reports in
// request order and equal to individual CheckAll runs.
func TestPortfolioEndpoint(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	props := []string{"G F result", "G F request", "F G reject"}
	status, _, body := postJSON(t, hs.URL+"/v1/check/portfolio",
		serve.PortfolioRequest{System: serverText, LTLs: props})
	if status != http.StatusOK {
		t.Fatalf("portfolio: status %d: %s", status, body)
	}
	var resp serve.PortfolioResponse
	decodeInto(t, body, &resp)
	if len(resp.Reports) != len(props) {
		t.Fatalf("portfolio returned %d reports, want %d", len(resp.Reports), len(props))
	}
	sys, _ := ts.ParseString(serverText)
	for i, text := range props {
		f, err := ltl.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.CheckAll(sys, core.FromFormula(f, nil))
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Reports[i]
		if got.Satisfied != want.Satisfied || got.RelativeLiveness != want.RelativeLiveness ||
			got.RelativeSafety != want.RelativeSafety {
			t.Fatalf("portfolio[%d] %q: %+v, core %+v", i, text, got, want)
		}
	}
}

// TestAbstractionEndpoint: the Sections 6–8 route end to end, against
// the known-good rlabstract fixture.
func TestAbstractionEndpoint(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	status, _, body := postJSON(t, hs.URL+"/v1/check/abstraction", serve.AbstractionRequest{
		System: concreteText,
		Hom:    "request=>request, result=>result, reject=>reject, accept=>, deny=>",
		Eta:    "G F ( result | reject )",
	})
	if status != http.StatusOK {
		t.Fatalf("abstraction: status %d: %s", status, body)
	}
	var resp serve.AbstractionResponse
	decodeInto(t, body, &resp)
	if resp.Conclusion == "" {
		t.Fatal("abstraction response has no conclusion")
	}
	if resp.AbstractStates <= 0 {
		t.Fatalf("abstract system has %d states", resp.AbstractStates)
	}
}

// TestBadRequests: malformed bodies are rejected with 400 and kind
// "bad_request" before any worker slot is spent.
func TestBadRequests(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{})
	cases := []struct {
		name string
		path string
		body string
	}{
		{"not json", "/v1/check/all", `{`},
		{"unknown field", "/v1/check/all", `{"system":"init s\n","ltl":"G a","bogus":1}`},
		{"trailing garbage", "/v1/check/all", `{"system":"init s\n","ltl":"G a"} x`},
		{"missing system", "/v1/check/all", `{"ltl":"G a"}`},
		{"no property", "/v1/check/all", `{"system":"init s\n"}`},
		{"both properties", "/v1/check/all", `{"system":"init s\n","ltl":"G a","omega":"( a ) ^w"}`},
		{"bad system text", "/v1/check/all", `{"system":"no init line here","ltl":"G a"}`},
		{"bad ltl", "/v1/check/all", `{"system":"init s\ns a s\n","ltl":"G ("}`},
		{"bad omega", "/v1/check/all", `{"system":"init s\ns a s\n","omega":"(("}`},
		{"negative timeout", "/v1/check/all", `{"system":"init s\ns a s\n","ltl":"G a","timeout_ms":-1}`},
		{"portfolio empty", "/v1/check/portfolio", `{"system":"init s\ns a s\n"}`},
		{"portfolio empty prop", "/v1/check/portfolio", `{"system":"init s\ns a s\n","ltls":[""]}`},
		{"abstraction no hom", "/v1/check/abstraction", `{"system":"init s\ns a s\n","eta":"G a"}`},
		{"abstraction bad hom", "/v1/check/abstraction", `{"system":"init s\ns a s\n","hom":"zzz=>x","eta":"G a"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var er serve.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if er.Kind != "bad_request" {
				t.Fatalf("kind = %q, want bad_request", er.Kind)
			}
		})
	}
	if got := s.Trace().Gauges()["serve.inflight"]; got != 0 {
		t.Fatalf("bad requests left %d inflight", got)
	}
}

// TestMethodNotAllowed: the method-scoped mux patterns reject GETs on
// check endpoints.
func TestMethodNotAllowed(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	resp, err := http.Get(hs.URL + "/v1/check/all")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/check/all = %d, want 405", resp.StatusCode)
	}
}

// TestCacheHitBitIdentical: the second identical request is served from
// the report cache — bit-identical body, hit header — and spelling the
// same system differently still hits (structural keying); no_cache
// bypasses.
func TestCacheHitBitIdentical(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{})
	req := serve.CheckRequest{System: serverText, LTL: "G F result"}
	status, hdr, cold := postJSON(t, hs.URL+"/v1/check/all", req)
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("cold: status %d header %q", status, hdr)
	}
	status, hdr, warm := postJSON(t, hs.URL+"/v1/check/all", req)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("warm: status %d header %q", status, hdr)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache hit differs from cold run:\ncold %s\nwarm %s", cold, warm)
	}

	// Same system, different spelling (whitespace, comments, spacing of
	// the formula): structural keys still hit.
	respelled := serve.CheckRequest{
		System: "# same system\n" + strings.ReplaceAll(serverText, "\n", "\n\n"),
		LTL:    "G (F (result))",
	}
	status, hdr, re := postJSON(t, hs.URL+"/v1/check/all", respelled)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("respelled: status %d header %q (want structural cache hit)", status, hdr)
	}
	if !bytes.Equal(cold, re) {
		t.Fatalf("respelled hit differs from cold run")
	}

	status, hdr, _ = postJSON(t, hs.URL+"/v1/check/all",
		serve.CheckRequest{System: serverText, LTL: "G F result", NoCache: true})
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("no_cache: status %d header %q, want fresh miss", status, hdr)
	}
	if s.Trace().Counters()["serve.cache.report_hits"] < 2 {
		t.Fatalf("report hit counter = %d, want >= 2", s.Trace().Counters()["serve.cache.report_hits"])
	}
}

// TestHealthzAndDrain: /healthz flips to 503 "draining" after Drain and
// new checks are rejected with kind "draining".
func TestHealthzAndDrain(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, h.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz after drain = %d %q, want 503 draining", resp.StatusCode, h.Status)
	}

	status, _, body := postJSON(t, hs.URL+"/v1/check/all",
		serve.CheckRequest{System: serverText, LTL: "G F result", NoCache: true})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("check while draining = %d: %s", status, body)
	}
	var er serve.ErrorResponse
	decodeInto(t, body, &er)
	if er.Kind != "draining" {
		t.Fatalf("kind = %q, want draining", er.Kind)
	}
}

// TestMetricsEndpoint: after real traffic /metrics exposes the serving
// counters and the per-cache statistics in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	req := serve.CheckRequest{System: serverText, LTL: "G F result"}
	postJSON(t, hs.URL+"/v1/check/all", req)
	postJSON(t, hs.URL+"/v1/check/all", req) // cache hit

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		"relive_serve_requests_total",
		"relive_serve_completed_total",
		"relive_serve_cache_report_hits_total",
		`relive_serve_cache_hits_total{cache="report"}`,
		`relive_serve_cache_entries{cache="system"}`,
		"# TYPE relive_serve_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}
