package serve

import (
	"sync"
	"time"

	"relive/internal/obs"
)

// CheckRecord is one completed check as retained by the flight
// recorder: enough to answer "what has this server been doing, and how
// long did each part take" without a debugger. Timings are nanoseconds;
// PhaseNS aggregates span durations by pipeline phase (core.PhaseOf).
type CheckRecord struct {
	TraceID     string           `json:"trace_id"`
	Endpoint    string           `json:"endpoint"`
	Hash        string           `json:"hash,omitempty"` // structural report key
	Verdict     string           `json:"verdict"`        // ok|cancelled|timeout|error|shed|draining|bad_request
	Status      int              `json:"status"`
	CachePath   string           `json:"cache_path,omitempty"` // report-hit|pipeline-hit|miss
	Kernel      string           `json:"kernel,omitempty"`     // auto|subset|antichain
	StartUnixNS int64            `json:"start_unix_ns"`
	DurationNS  int64            `json:"duration_ns"`
	QueueWaitNS int64            `json:"queue_wait_ns,omitempty"`
	PhaseNS     map[string]int64 `json:"phase_ns,omitempty"`
	Slow        bool             `json:"slow,omitempty"`      // over the slow-check threshold
	HasTrace    bool             `json:"has_trace,omitempty"` // full span tree retained
}

// InflightRecord is a check that has started but not yet completed, as
// listed by /debug/checks.
type InflightRecord struct {
	TraceID     string `json:"trace_id"`
	Endpoint    string `json:"endpoint"`
	StartUnixNS int64  `json:"start_unix_ns"`
	ElapsedNS   int64  `json:"elapsed_ns"`
}

// flightRecorder keeps a bounded ring of the last N completed checks,
// the set of in-flight ones, and — for checks over the slow threshold —
// their full span trees, keyed by trace ID. A nil *flightRecorder is
// the disabled recorder: every method is a nil-safe no-op so the
// serving hot path stays allocation-free when tracing is off.
type flightRecorder struct {
	slow      time.Duration
	maxTraces int

	mu       sync.Mutex
	ring     []CheckRecord // capacity-bounded, oldest overwritten
	next     int           // ring write cursor
	total    uint64        // completed checks ever recorded
	inflight map[string]InflightRecord
	traces   map[string]obs.Dump
	order    []string // trace retention order, oldest first
}

func newFlightRecorder(entries, traces int, slow time.Duration) *flightRecorder {
	return &flightRecorder{
		slow:      slow,
		maxTraces: traces,
		ring:      make([]CheckRecord, entries),
		inflight:  make(map[string]InflightRecord),
		traces:    make(map[string]obs.Dump),
	}
}

// begin registers an in-flight check.
func (f *flightRecorder) begin(traceID, endpoint string, start time.Time) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inflight[traceID] = InflightRecord{
		TraceID:     traceID,
		Endpoint:    endpoint,
		StartUnixNS: start.UnixNano(),
	}
}

// end moves a check from in-flight to the ring. When the check ran over
// the slow threshold and carries a span tree, the full trace is
// retained (evicting the oldest retained trace past the cap).
func (f *flightRecorder) end(rec CheckRecord, tr *obs.Trace) {
	if f == nil {
		return
	}
	rec.Slow = time.Duration(rec.DurationNS) >= f.slow
	retain := rec.Slow && tr != nil && f.maxTraces > 0
	var dump obs.Dump
	if retain {
		// Snapshot outside the lock; Dump takes the trace's own lock. A
		// span-free trace (a slow report hit — all latency, no check) is
		// not worth a retention slot.
		dump = tr.Dump()
		retain = len(dump.Spans) > 0
		rec.HasTrace = retain
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.inflight, rec.TraceID)
	if len(f.ring) > 0 {
		f.ring[f.next] = rec
		f.next = (f.next + 1) % len(f.ring)
		f.total++
	}
	if retain {
		if _, dup := f.traces[rec.TraceID]; !dup {
			f.order = append(f.order, rec.TraceID)
		}
		f.traces[rec.TraceID] = dump
		for len(f.order) > f.maxTraces {
			delete(f.traces, f.order[0])
			f.order = f.order[1:]
		}
	}
}

// recent returns the completed checks, most recent first.
func (f *flightRecorder) recent() []CheckRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := int(f.total)
	if n > len(f.ring) {
		n = len(f.ring)
	}
	out := make([]CheckRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)])
	}
	return out
}

// running returns the in-flight checks with their elapsed time.
func (f *flightRecorder) running(now time.Time) []InflightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]InflightRecord, 0, len(f.inflight))
	for _, r := range f.inflight {
		r.ElapsedNS = now.UnixNano() - r.StartUnixNS
		out = append(out, r)
	}
	return out
}

// trace returns the retained span tree for a trace ID.
func (f *flightRecorder) trace(traceID string) (obs.Dump, bool) {
	if f == nil {
		return obs.Dump{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d, ok := f.traces[traceID]
	return d, ok
}
