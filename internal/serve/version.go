package serve

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the module version stamped
// by the Go toolchain (VCS tag or pseudo-version; "devel" for plain
// source builds) and the Go release it was compiled with. It is
// embedded in /healthz and printed by rlserve -version, so a deployed
// server and its binary can always be matched.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// Build reads the binary's build information.
func Build() BuildInfo {
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	return BuildInfo{Version: version, GoVersion: runtime.Version()}
}
