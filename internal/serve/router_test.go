package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relive/internal/ltl"
)

// The router's white-box suite: the key mirror (router keys must equal
// the backends' cache keys, or coalescing would merge what a backend
// would not), ring placement, bounded load, and the coalescing cell's
// lifecycle. The black-box cluster behavior lives in cluster_test.go.

// stubBackends starts n trivial HTTP servers whose /healthz always
// answers 200, so NewRouter's prober keeps them healthy.
func stubBackends(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	return urls
}

func newTestRouter(t *testing.T, urls []string) *Router {
	t.Helper()
	rt, err := NewRouter(RouterConfig{Backends: urls, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestRouteKeyMirrorsBackendKeys pins the router's central invariant:
// routeKeyFor computes exactly the report key the backend handlers
// cache under, for every endpoint shape — so router-level coalescing
// can only merge requests a single backend's report cache would merge.
func TestRouteKeyMirrorsBackendKeys(t *testing.T) {
	s := New(Config{})
	sysText := "init idle\nidle request busy\nbusy result idle\nbusy reject idle\n"

	// Single-property endpoints: rkey must equal
	// reportKey(endpoint, resolveSystem key, resolveProperty part).
	sysKey, sc, err := s.resolveSystem(sysText)
	if err != nil {
		t.Fatal(err)
	}
	part, _, err := resolveProperty(sc, "G F result", "")
	if err != nil {
		t.Fatal(err)
	}
	for _, endpoint := range []string{"all", "liveness", "safety", "satisfies"} {
		body, _ := json.Marshal(CheckRequest{System: sysText, LTL: "G F result"})
		rk, err := routeKeyFor(endpoint, body)
		if err != nil {
			t.Fatalf("%s: %v", endpoint, err)
		}
		if want := reportKey(endpoint, sysKey, part); rk.rkey != want {
			t.Fatalf("%s: router rkey %q != backend report key %q", endpoint, rk.rkey, want)
		}
		if rk.sysKey != sysKey {
			t.Fatalf("%s: router sysKey %q != backend %q", endpoint, rk.sysKey, sysKey)
		}
	}

	// ω-regex properties are keyed by raw text on both sides.
	const omegaText = "( request result | request reject ) ^w"
	omegaPart, _, err := resolveProperty(sc, "", omegaText)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(CheckRequest{System: sysText, Omega: omegaText})
	rk, err := routeKeyFor("all", body)
	if err != nil {
		t.Fatal(err)
	}
	if want := reportKey("all", sysKey, omegaPart); rk.rkey != want {
		t.Fatalf("omega: router rkey %q != backend report key %q", rk.rkey, want)
	}

	// Portfolio: hashKey("portfolio", sysKey, parts...).
	body, _ = json.Marshal(PortfolioRequest{System: sysText, LTLs: []string{"G F result", "G F request"}})
	rk, err = routeKeyFor("portfolio", body)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, _ := resolveProperty(sc, "G F result", "")
	p2, _, _ := resolveProperty(sc, "G F request", "")
	if want := hashKey("portfolio", sysKey, p1, p2); rk.rkey != want {
		t.Fatalf("portfolio: router rkey %q != backend %q", rk.rkey, want)
	}

	// Abstraction: hashKey("abstraction", sysKey, raw hom, canonical η) —
	// recomputed here exactly as handleAbstraction does.
	homText := "request=>request, result=>result, reject=>reject"
	etaText := "G F ( result | reject )"
	body, _ = json.Marshal(AbstractionRequest{System: sysText, Hom: homText, Eta: etaText})
	rk, err = routeKeyFor("abstraction", body)
	if err != nil {
		t.Fatal(err)
	}
	eta, err := ltl.Parse(etaText)
	if err != nil {
		t.Fatal(err)
	}
	if want := hashKey("abstraction", sysKey, homText, eta.String()); rk.rkey != want {
		t.Fatalf("abstraction: router rkey %q != backend %q", rk.rkey, want)
	}

	// Fair-abstract: hashKey("fair-abstract", sysKey, raw hom, fairness,
	// canonical η) — recomputed here exactly as handleFairAbstract does.
	// The fairness notion is part of the key, so strong and weak requests
	// never coalesce into one another.
	faHom := "request=>req, result=>ok, reject=>"
	faEta := "G F ( ok )"
	body, _ = json.Marshal(FairAbstractRequest{System: sysText, Hom: faHom, Fairness: "strong", Eta: faEta})
	rk, err = routeKeyFor("fair-abstract", body)
	if err != nil {
		t.Fatal(err)
	}
	faParsed, err := ltl.Parse(faEta)
	if err != nil {
		t.Fatal(err)
	}
	if want := hashKey("fair-abstract", sysKey, faHom, "strong", faParsed.String()); rk.rkey != want {
		t.Fatalf("fair-abstract: router rkey %q != backend %q", rk.rkey, want)
	}
	body, _ = json.Marshal(FairAbstractRequest{System: sysText, Hom: faHom, Fairness: "weak", Eta: faEta})
	weakRK, err := routeKeyFor("fair-abstract", body)
	if err != nil {
		t.Fatal(err)
	}
	if weakRK.rkey == rk.rkey {
		t.Fatal("strong and weak fair-abstract requests collided on one route key")
	}
	if weakRK.sysKey != rk.sysKey {
		t.Fatal("same system got different placement keys for different fairness notions")
	}
	if _, err := routeKeyFor("fair-abstract", []byte(`{"system":"init s\ns a s\n","hom":"a=>x","fairness":"fair","eta":"G x"}`)); err == nil {
		t.Fatal("invalid fairness notion accepted by the router")
	}

	// Statistical: statisticalKey(sysKey, propPart, normalized request) —
	// the router runs the same decoder as the backend, so an unset budget
	// and the explicitly-spelled defaults produce one key, and the seed
	// is part of the key so distinct seeds never coalesce.
	body, _ = json.Marshal(StatisticalRequest{System: sysText, LTL: "G F result", Seed: 7})
	statRK, err := routeKeyFor("statistical", body)
	if err != nil {
		t.Fatal(err)
	}
	statReq, err := DecodeStatisticalRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if want := statisticalKey(sysKey, part, statReq); statRK.rkey != want {
		t.Fatalf("statistical: router rkey %q != backend report key %q", statRK.rkey, want)
	}
	if statRK.sysKey != sysKey {
		t.Fatalf("statistical: router sysKey %q != backend %q", statRK.sysKey, sysKey)
	}
	body, _ = json.Marshal(StatisticalRequest{
		System: sysText, LTL: "G F result", Seed: 7, Samples: 400, Steps: 256, Confidence: 0.99})
	explicitRK, err := routeKeyFor("statistical", body)
	if err != nil {
		t.Fatal(err)
	}
	if explicitRK.rkey != statRK.rkey {
		t.Fatal("explicitly-spelled default budget got a different route key than the unset budget")
	}
	body, _ = json.Marshal(StatisticalRequest{System: sysText, LTL: "G F result", Seed: 8})
	otherSeedRK, err := routeKeyFor("statistical", body)
	if err != nil {
		t.Fatal(err)
	}
	if otherSeedRK.rkey == statRK.rkey {
		t.Fatal("distinct seeds collided on one statistical route key")
	}
	if otherSeedRK.sysKey != statRK.sysKey {
		t.Fatal("same system got different placement keys for different seeds")
	}
	if _, err := routeKeyFor("statistical", []byte(`{"system":"init s\ns a s\n","ltl":"G a","samples":-1}`)); err == nil {
		t.Fatal("invalid sampling budget accepted by the router")
	}

	// Canonicalization: a differently-spelled but structurally identical
	// system (extra blank lines, reordered transitions format the same)
	// and formula spelling share one key; a different formula does not.
	variant := "\ninit idle\n\nidle  request   busy\nbusy result idle\nbusy reject idle\n\n"
	b1, _ := json.Marshal(CheckRequest{System: sysText, LTL: "G F result"})
	b2, _ := json.Marshal(CheckRequest{System: variant, LTL: "G  F   result"})
	k1, err1 := routeKeyFor("all", b1)
	k2, err2 := routeKeyFor("all", b2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if k1.rkey != k2.rkey || k1.sysKey != k2.sysKey {
		t.Fatal("equivalent spellings of the same request got different route keys")
	}
	b3, _ := json.Marshal(CheckRequest{System: sysText, LTL: "G F request"})
	k3, err := routeKeyFor("all", b3)
	if err != nil {
		t.Fatal(err)
	}
	if k3.rkey == k1.rkey {
		t.Fatal("different formulas collided on one route key")
	}
	if k3.sysKey != k1.sysKey {
		t.Fatal("same system got different placement keys for different formulas")
	}

	// Malformed requests are rejected with the same parse errors the
	// backend would produce; unknown endpoints are flagged distinctly.
	if _, err := routeKeyFor("all", []byte(`{"ltl":"G F a"}`)); err == nil {
		t.Fatal("missing system accepted")
	}
	if _, err := routeKeyFor("nope", b1); !errors.Is(err, errUnknownEndpoint) {
		t.Fatalf("unknown endpoint error = %v", err)
	}
}

// TestPickDeterministicSpread: placement is a pure function of the key,
// and distinct keys spread over every backend.
func TestPickDeterministicSpread(t *testing.T) {
	rt := newTestRouter(t, stubBackends(t, 3))
	counts := make(map[string]int)
	for i := 0; i < 600; i++ {
		key := fmt.Sprintf("sys-%d", i)
		order := rt.pick(key)
		if len(order) != 3 {
			t.Fatalf("pick returned %d backends, want 3", len(order))
		}
		again := rt.pick(key)
		for j := range order {
			if order[j] != again[j] {
				t.Fatalf("pick(%q) not deterministic at position %d", key, j)
			}
		}
		counts[order[0].url]++
	}
	for _, b := range rt.backends {
		if c := counts[b.url]; c < 60 { // 10% of 600; fair share is 200
			t.Fatalf("backend %s owns only %d/600 keys — ring is unbalanced: %v", b.url, c, counts)
		}
	}
}

// TestPickBoundedLoadAndHealth: an overloaded backend yields its keys
// to the next ring candidate, and an unhealthy one sorts last.
func TestPickBoundedLoadAndHealth(t *testing.T) {
	rt := newTestRouter(t, stubBackends(t, 3))
	key := "hot-system"
	first := rt.pick(key)[0]

	// Pile in-flight proxies on the key's owner: with total=40 over 3
	// healthy backends the bounded-load cap is well under 40, so the
	// owner must be skipped.
	first.inflight.Store(40)
	order := rt.pick(key)
	if order[0] == first {
		t.Fatal("bounded load kept routing to the overloaded owner")
	}
	if order[len(order)-1] != first {
		t.Fatal("overloaded owner should sort after under-capacity backends")
	}
	first.inflight.Store(0)
	if rt.pick(key)[0] != first {
		t.Fatal("owner did not get its keys back after draining")
	}

	// Unhealthy sorts last but is still offered as a last resort.
	first.healthy.Store(false)
	order = rt.pick(key)
	if order[0] == first || order[len(order)-1] != first {
		t.Fatal("unhealthy owner should be the last resort")
	}
	first.healthy.Store(true)
}

// TestCoalesceLifecycle: one run per key across concurrent callers,
// errors shared with the waiters of the moment but never sticky, and
// the last departing waiter cancels the detached run.
func TestCoalesceLifecycle(t *testing.T) {
	rt := &Router{flight: make(map[string]*flightCell)}
	var runs atomic.Int64
	release := make(chan struct{})
	fn := func(ctx context.Context) (*proxyResult, error) {
		runs.Add(1)
		<-release
		return &proxyResult{status: 200, body: []byte("shared")}, nil
	}

	const n = 50
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			res, shared, err := rt.coalesce("k", context.Background(), time.Minute, fn)
			if err != nil || string(res.body) != "shared" {
				t.Errorf("coalesced call: res=%v err=%v", res, err)
				return
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// All callers are in flight (the leader is parked on release);
	// every later arrival must have joined its cell.
	for {
		rt.mu.Lock()
		c := rt.flight["k"]
		waiters := 0
		if c != nil {
			waiters = c.waiters
		}
		rt.mu.Unlock()
		if waiters == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d concurrent identical calls ran fn %d times, want 1", n, got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Fatalf("shared=true for %d callers, want %d", got, n-1)
	}

	// Errors are delivered to current waiters but the cell dies with the
	// run: the next call retries immediately.
	boom := errors.New("backend exploded")
	failOnce := func(ctx context.Context) (*proxyResult, error) { return nil, boom }
	if _, _, err := rt.coalesce("e", context.Background(), time.Minute, failOnce); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	ok := func(ctx context.Context) (*proxyResult, error) {
		return &proxyResult{status: 200, body: []byte("recovered")}, nil
	}
	res, shared, err := rt.coalesce("e", context.Background(), time.Minute, ok)
	if err != nil || shared || string(res.body) != "recovered" {
		t.Fatalf("error was sticky: res=%v shared=%v err=%v", res, shared, err)
	}

	// Last waiter out cancels the detached run.
	cancelled := make(chan struct{})
	hang := func(ctx context.Context) (*proxyResult, error) {
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	}
	clientCtx, clientCancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := rt.coalesce("h", clientCtx, time.Minute, hang)
		errc <- err
	}()
	for {
		rt.mu.Lock()
		_, inFlight := rt.flight["h"]
		rt.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	clientCancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("departing caller got %v, want context.Canceled", err)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned run was never cancelled")
	}
}

// TestRouterRejectsEmptyBackends: configuration errors are loud.
func TestRouterRejectsEmptyBackends(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("NewRouter accepted zero backends")
	}
	if _, err := NewRouter(RouterConfig{Backends: []string{"", "  "}}); err == nil {
		t.Fatal("NewRouter accepted only-blank backend URLs")
	}
}
