package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"relive/internal/core"
	"relive/internal/kernel"
	"relive/internal/obs"
)

// TraceHeader carries the W3C trace-context parent on requests and
// responses. An incoming traceparent adopts the caller's trace ID;
// otherwise the server mints one. The response always echoes the trace
// so a client can fetch /debug/checks/{traceID} afterwards.
const TraceHeader = "traceparent"

// reqInfo is the per-request observability state threaded through the
// handler via the request context: the trace identity, the per-request
// span tree (nil when the flight recorder is disabled), and the fields
// the handler fills in as the request progresses. Handlers run
// synchronously inside the traced wrapper, so plain fields suffice.
type reqInfo struct {
	endpoint string
	check    bool // a check endpoint (admitted, recorded in flight ring)
	traceID  string
	start    time.Time
	trace    *obs.Trace   // request-scoped span tree, nil when disabled
	rec      obs.Recorder // tee of trace + server metrics, or the metrics trace alone

	queueWait time.Duration
	kern      string // kernel in effect for the request: auto | subset | antichain
	cachePath string // report-hit | pipeline-hit | miss
	verdict   string // ok | cancelled | timeout | error | shed | draining | bad_request
	hash      string // structural report key
	status    int
}

type reqInfoKey struct{}

// reqFrom returns the request's observability state, or nil outside the
// traced wrapper (direct handler tests).
func reqFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// recorder returns the recorder check work should report to: the
// request-scoped tee when available, the server trace otherwise.
func (s *Server) recorder(ctx context.Context) obs.Recorder {
	if ri := reqFrom(ctx); ri != nil {
		return ri.rec
	}
	return s.tr
}

// traced wraps a handler with the request-scoped observability
// pipeline: trace-ID adoption/minting, the per-request span tree,
// latency histograms, the flight recorder, and JSON-lines logging.
// check marks the load-bearing endpoints whose completions land in the
// flight ring.
func (s *Server) traced(endpoint string, check bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ri := &reqInfo{
			endpoint: endpoint,
			check:    check,
			start:    time.Now(),
			rec:      s.tr,
			kern:     kernel.Default().String(),
		}
		tid, ok := obs.ParseTraceparent(r.Header.Get(TraceHeader))
		if !ok {
			tid = obs.NewTraceID()
		}
		ri.traceID = tid
		if check && s.flight != nil {
			ri.trace = obs.NewTrace()
			ri.trace.SetTraceID(tid)
			ri.rec = obs.TeeMetrics(ri.trace, s.tr)
		}
		w.Header().Set(TraceHeader, obs.Traceparent(tid))

		ctx := obs.ContextWithTraceID(r.Context(), tid)
		ctx = context.WithValue(ctx, reqInfoKey{}, ri)
		sw := &statusWriter{ResponseWriter: w}
		if check {
			s.flight.begin(tid, endpoint, ri.start)
		}

		h(sw, r.WithContext(ctx))

		ri.status = sw.status()
		dur := time.Since(ri.start)
		phases := phaseDurations(ri.trace)
		s.observeRequest(ri, dur, phases)
		if check {
			s.flight.end(CheckRecord{
				TraceID:     ri.traceID,
				Endpoint:    endpoint,
				Hash:        ri.hash,
				Verdict:     ri.verdict,
				Status:      ri.status,
				CachePath:   ri.cachePath,
				Kernel:      ri.kern,
				StartUnixNS: ri.start.UnixNano(),
				DurationNS:  dur.Nanoseconds(),
				QueueWaitNS: ri.queueWait.Nanoseconds(),
				PhaseNS:     phases,
			}, ri.trace)
		}
		s.logRequest(ri, dur)
	}
}

// phaseDurations aggregates a request trace's span durations by
// pipeline phase. Nil (tracing disabled) or span-free traces yield nil.
func phaseDurations(tr *obs.Trace) map[string]int64 {
	if tr == nil {
		return nil
	}
	var phases map[string]int64
	for _, sp := range tr.Spans() {
		phase := core.PhaseOf(sp.Name)
		if phase == "" || sp.DurationNS < 0 {
			continue
		}
		if phases == nil {
			phases = make(map[string]int64, len(core.Phases))
		}
		phases[phase] += sp.DurationNS
	}
	return phases
}

// observeRequest feeds the latency histograms behind /metrics.
func (s *Server) observeRequest(ri *reqInfo, dur time.Duration, phases map[string]int64) {
	s.metrics.endpoint[ri.endpoint].Observe(dur.Nanoseconds())
	if ri.queueWait > 0 {
		s.metrics.queueWait.Observe(ri.queueWait.Nanoseconds())
	}
	if ri.cachePath != "" {
		s.metrics.cachePath[ri.cachePath].Observe(dur.Nanoseconds())
	}
	for phase, ns := range phases {
		s.metrics.phase[phase+"|"+ri.kern].Observe(ns)
	}
}

// logRequest emits one JSON-lines (or text, per the logger's handler)
// record per request. Check requests log at info; the ambient GET
// endpoints (healthz, metrics, debug) at debug, so a scraped server
// stays quiet at the default level.
func (s *Server) logRequest(ri *reqInfo, dur time.Duration) {
	if s.log == nil {
		return
	}
	level := slog.LevelInfo
	if !ri.check {
		level = slog.LevelDebug
	}
	attrs := []slog.Attr{
		slog.String("trace_id", ri.traceID),
		slog.String("endpoint", ri.endpoint),
		slog.Int("status", ri.status),
		slog.Duration("duration", dur),
	}
	if ri.verdict != "" {
		attrs = append(attrs, slog.String("verdict", ri.verdict))
	}
	if ri.cachePath != "" {
		attrs = append(attrs, slog.String("cache", ri.cachePath))
	}
	if ri.queueWait > 0 {
		attrs = append(attrs, slog.Duration("queue_wait", ri.queueWait))
	}
	if ri.hash != "" {
		attrs = append(attrs, slog.String("hash", ri.hash))
	}
	s.log.LogAttrs(context.Background(), level, "request", attrs...)
}

// statusWriter captures the response status for histograms, the flight
// ring, and logs. An unset status means the handler wrote the body
// without WriteHeader, i.e. 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}
