package serve_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/core"
	"relive/internal/fairness"
	"relive/internal/gen"
	"relive/internal/ltl"
	"relive/internal/oracle"
	"relive/internal/serve"
	"relive/internal/ts"
	"relive/internal/word"
)

// The service-level differential suite: randomized request bodies
// travel the full wire path — JSON decode, structural caching,
// admission, the ctx-plumbed pipeline, JSON encode — and the verdicts
// that come back must agree with internal/oracle's naive reference.
// The comparison is asymmetric, as in internal/oracle's own suite:
// a Holds verdict is checked against the oracle's exhaustive bounded
// search (any find would be a real disagreement); a ¬Holds verdict must
// come with a witness the oracle confirms exactly.
var (
	serveSeedFlag  = flag.Int64("serve-seed", 1, "root seed of the randomized service differential suite")
	servePairsFlag = flag.Int("serve-pairs", 120, "number of randomized request bodies per run")
	serveURLFlag   = flag.String("serve-url", "", "run the differential suite against this live rlserve (or router) base URL instead of an in-process server")
)

// translationCap skips rare pathological tableau blowups, as in the
// oracle suite.
const translationCap = 64

func TestServeDifferentialAgainstOracle(t *testing.T) {
	// With -serve-url the suite drives an externally running rlserve —
	// or a shard router, whose answers must be bit-identical to a
	// single node's — over real HTTP; the CI cluster-smoke job uses
	// exactly this to differential-test a 3-backend cluster.
	baseURL := *serveURLFlag
	if baseURL == "" {
		_, hs := newTestServer(t, serve.Config{})
		baseURL = hs.URL
	}
	rng := rand.New(rand.NewSource(*serveSeedFlag))
	ab := alphabet.FromNames("a", "b")
	words := gen.Words(ab, oracle.DefaultBounds().WordLen)
	lassos := gen.Lassos(ab, oracle.DefaultBounds().LassoPrefix, oracle.DefaultBounds().LassoLoop)

	checked, skipped := 0, 0
	for i := 0; i < *servePairsFlag; i++ {
		n := 3 + rng.Intn(4)
		sys := gen.System(rng, ab, n, 0.25+0.35*rng.Float64())
		f := gen.Formula(rng, []string{"a", "b"}, 1+rng.Intn(3))
		pa := ltl.TranslateBuchi(f, ltl.Canonical(ab))
		if pa.NumStates() > translationCap {
			skipped++
			continue
		}
		op := oracle.Property{Formula: f, Auto: pa}
		desc := fmt.Sprintf("pair %d: system\n%sformula %s", i, sys.FormatString(), f)

		status, _, body := postJSON(t, baseURL+"/v1/check/all",
			serve.CheckRequest{System: sys.FormatString(), LTL: f.String()})
		if status != http.StatusOK {
			t.Fatalf("%s\nstatus %d: %s", desc, status, body)
		}
		var rep core.Report
		decodeInto(t, body, &rep)

		if msg := oracleDisagreement(sys, op, rep, words, lassos); msg != "" {
			t.Fatalf("%s\n%s", desc, msg)
		}
		if msg := endpointsDisagree(t, baseURL, sys, f, rep); msg != "" {
			t.Fatalf("%s\n%s", desc, msg)
		}
		if msg := fairAbstractDisagreement(t, baseURL, rng, sys); msg != "" {
			t.Fatalf("%s\n%s", desc, msg)
		}
		if msg := statisticalDisagreement(t, baseURL, *serveSeedFlag+int64(i), sys, f); msg != "" {
			t.Fatalf("%s\n%s", desc, msg)
		}
		checked++
	}
	t.Logf("checked %d randomized bodies (%d tableau skips)", checked, skipped)
}

// fairAbstractDisagreement runs the fair-abstract leg of the service
// differential on a randomized (hom, fairness, η) triple over sys: the
// served body must be byte-identical to a direct core check, a Holds
// verdict must survive the oracle's bounded fair-lasso enumeration, and
// a Fails verdict's witness must be oracle-confirmed exactly.
func fairAbstractDisagreement(t *testing.T, baseURL string, rng *rand.Rand, sys *ts.System) string {
	t.Helper()
	// Round-trip through the wire format first: it drops isolated
	// states, and the local report must describe exactly the system the
	// server parses.
	wire, err := ts.ParseString(sys.FormatString())
	if err != nil {
		return fmt.Sprintf("reparse wire system: %v", err)
	}
	sys = wire
	if sys.Alphabet().Size() == 0 {
		return "" // edge-less system: no concrete alphabet to abstract
	}
	h := gen.Hom(rng, sys.Alphabet(), 0.3)
	if len(h.Dest().Names()) == 0 {
		return "" // ε-only image: no abstract alphabet to write η over
	}
	eta := gen.Formula(rng, h.Dest().Names(), 1+rng.Intn(2))
	kind := fairness.Strong
	okind := oracle.StronglyFair
	if rng.Intn(2) == 1 {
		kind, okind = fairness.Weak, oracle.WeaklyFair
	}
	local, err := core.CheckFairAbstract(sys, h, kind,
		core.FromFormula(eta, ltl.Canonical(h.Dest())))
	if err != nil {
		return "" // Σ'-normal-form rejection; the wire answers 500 consistently
	}

	status, _, body := postJSON(t, baseURL+"/v1/check/fair-abstract", serve.FairAbstractRequest{
		System:   sys.FormatString(),
		Hom:      h.String(),
		Fairness: core.FairnessKindName(kind),
		Eta:      eta.String(),
	})
	if status != http.StatusOK {
		return fmt.Sprintf("fair-abstract (hom %s, %s, η %s): status %d: %s",
			h, core.FairnessKindName(kind), eta, status, body)
	}
	want, err := json.Marshal(local)
	if err != nil {
		return fmt.Sprintf("marshal local fair-abstract report: %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(body), want) {
		return fmt.Sprintf("served fair-abstract body differs from the direct core check\nserved: %s\nlocal:  %s", body, want)
	}

	op := oracle.FromFormula(eta, ltl.Canonical(h.Dest()))
	bounds := oracle.Bounds{WordLen: 5, LassoPrefix: 2, LassoLoop: 4}
	if local.Holds {
		el, found, err := oracle.FairAbstractViolation(sys, h, okind, op, bounds)
		if err != nil {
			return fmt.Sprintf("oracle.FairAbstractViolation: %v", err)
		}
		if found {
			return fmt.Sprintf("served fair-abstract holds=true (hom %s, %s, η %s) but oracle found fair violation %s",
				h, core.FairnessKindName(kind), eta, el.Word().String(sys.Alphabet()))
		}
	} else {
		run := local.Witness()
		if run == nil {
			return "served fair-abstract holds=false without a witness run"
		}
		ok, err := oracle.ConfirmFairAbstractViolation(sys, h, okind, op,
			oracle.EdgeLasso{Prefix: run.Prefix, Loop: run.Loop})
		if err != nil {
			return fmt.Sprintf("ConfirmFairAbstractViolation: %v", err)
		}
		if !ok {
			return fmt.Sprintf("fair-abstract witness (hom %s, %s, η %s) not confirmed by the oracle",
				h, core.FairnessKindName(kind), eta)
		}
	}
	return ""
}

// statisticalDisagreement runs the statistical leg of the service
// differential: the served sampled body must be byte-identical to a
// direct core check under the same seed (through the in-process LRUs,
// the store, or — with -serve-url — a cluster router and its backends),
// a "fails" witness must be a behavior of the system violating the
// formula under the direct ltl.EvalLasso semantics, and an exact-Holds
// verdict can never coexist with a sampled counterexample.
func statisticalDisagreement(t *testing.T, baseURL string, seed int64, sys *ts.System, f *ltl.Formula) string {
	t.Helper()
	wire, err := ts.ParseString(sys.FormatString())
	if err != nil {
		return fmt.Sprintf("reparse wire system: %v", err)
	}
	sys = wire
	local, err := core.CheckStatistical(sys, core.FromFormula(f, nil),
		core.StatOptions{Seed: seed, Samples: 80, Steps: 64})
	if err != nil {
		return fmt.Sprintf("CheckStatistical: %v", err)
	}
	status, _, body := postJSON(t, baseURL+"/v1/check/statistical", serve.StatisticalRequest{
		System:  sys.FormatString(),
		LTL:     f.String(),
		Seed:    seed,
		Samples: 80,
		Steps:   64,
	})
	if status != http.StatusOK {
		return fmt.Sprintf("statistical (seed %d): status %d: %s", seed, status, body)
	}
	want, err := json.Marshal(local)
	if err != nil {
		return fmt.Sprintf("marshal local statistical report: %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(body), want) {
		return fmt.Sprintf("served statistical body differs from the direct core check\nserved: %s\nlocal:  %s", body, want)
	}
	if local.Verdict == core.StatVerdictFails {
		l, ok := local.Witness()
		if !ok {
			return "statistical fails verdict without a witness"
		}
		if !oracle.IsBehavior(sys, l) {
			return fmt.Sprintf("sampled counterexample %s is not a behavior", l.String(sys.Alphabet()))
		}
		sat, err := ltl.EvalLasso(f, l, ltl.Canonical(sys.Alphabet()))
		if err != nil {
			return fmt.Sprintf("EvalLasso: %v", err)
		}
		if sat {
			return fmt.Sprintf("sampled counterexample %s satisfies %s", l.String(sys.Alphabet()), f)
		}
	}
	return ""
}

// oracleDisagreement compares one served report with the bounded
// oracle; "" means agreement.
func oracleDisagreement(sys *ts.System, op oracle.Property, rep core.Report, words []word.Word, lassos []word.Lasso) string {
	ab := sys.Alphabet()

	if rep.Satisfied {
		holds, cex, err := oracle.Satisfaction(sys, op, lassos)
		if err != nil {
			return fmt.Sprintf("oracle.Satisfaction: %v", err)
		}
		if !holds {
			return fmt.Sprintf("served satisfied=true but oracle found behavior %s outside P", cex.String(ab))
		}
	} else {
		l, err := lassoFromNames(ab, rep.Counterexample, rep.CounterexampleLp)
		if err != nil {
			return fmt.Sprintf("served counterexample: %v", err)
		}
		ok, err := oracle.ConfirmCounterexample(sys, op, l)
		if err != nil {
			return fmt.Sprintf("ConfirmCounterexample: %v", err)
		}
		if !ok {
			return fmt.Sprintf("served counterexample %s not confirmed", l.String(ab))
		}
	}

	if rep.RelativeLiveness {
		holds, w, err := oracle.RelativeLiveness(sys, op, words)
		if err != nil {
			return fmt.Sprintf("oracle.RelativeLiveness: %v", err)
		}
		if !holds {
			return fmt.Sprintf("served relativeLiveness=true but oracle found bad prefix %s", w.String(ab))
		}
	} else {
		w, err := wordFromNames(ab, rep.BadPrefix)
		if err != nil {
			return fmt.Sprintf("served bad prefix: %v", err)
		}
		ok, err := oracle.ConfirmBadPrefix(sys, op, w)
		if err != nil {
			return fmt.Sprintf("ConfirmBadPrefix: %v", err)
		}
		if !ok {
			return fmt.Sprintf("served bad prefix %s not confirmed", w.String(ab))
		}
	}

	if rep.RelativeSafety {
		holds, v, err := oracle.RelativeSafety(sys, op, lassos)
		if err != nil {
			return fmt.Sprintf("oracle.RelativeSafety: %v", err)
		}
		if !holds {
			return fmt.Sprintf("served relativeSafety=true but oracle found violation %s", v.String(ab))
		}
	} else {
		l, err := lassoFromNames(ab, rep.Violation, rep.ViolationLoop)
		if err != nil {
			return fmt.Sprintf("served violation: %v", err)
		}
		ok, err := oracle.ConfirmSafetyViolation(sys, op, l)
		if err != nil {
			return fmt.Sprintf("ConfirmSafetyViolation: %v", err)
		}
		if !ok {
			return fmt.Sprintf("served violation %s not confirmed per Definition 4.2", l.String(ab))
		}
	}
	return ""
}

// endpointsDisagree cross-checks the typed single-verdict endpoints
// against the /v1/check/all report for the same body.
func endpointsDisagree(t *testing.T, baseURL string, sys *ts.System, f *ltl.Formula, rep core.Report) string {
	t.Helper()
	req := serve.CheckRequest{System: sys.FormatString(), LTL: f.String()}

	status, _, body := postJSON(t, baseURL+"/v1/check/liveness", req)
	var lr serve.LivenessResponse
	decodeInto(t, body, &lr)
	if status != http.StatusOK || lr.Holds != rep.RelativeLiveness {
		return fmt.Sprintf("liveness endpoint: status %d holds %v, report %v", status, lr.Holds, rep.RelativeLiveness)
	}

	status, _, body = postJSON(t, baseURL+"/v1/check/safety", req)
	var sr serve.SafetyResponse
	decodeInto(t, body, &sr)
	if status != http.StatusOK || sr.Holds != rep.RelativeSafety {
		return fmt.Sprintf("safety endpoint: status %d holds %v, report %v", status, sr.Holds, rep.RelativeSafety)
	}

	status, _, body = postJSON(t, baseURL+"/v1/check/satisfies", req)
	var tr serve.SatisfiesResponse
	decodeInto(t, body, &tr)
	if status != http.StatusOK || tr.Holds != rep.Satisfied {
		return fmt.Sprintf("satisfies endpoint: status %d holds %v, report %v", status, tr.Holds, rep.Satisfied)
	}
	return ""
}

// wordFromNames maps the wire rendering (action names) back to symbols.
func wordFromNames(ab *alphabet.Alphabet, names []string) (word.Word, error) {
	w := make(word.Word, len(names))
	for i, name := range names {
		sym, ok := ab.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown action %q in served witness", name)
		}
		w[i] = sym
	}
	return w, nil
}

func lassoFromNames(ab *alphabet.Alphabet, prefix, loop []string) (word.Lasso, error) {
	p, err := wordFromNames(ab, prefix)
	if err != nil {
		return word.Lasso{}, err
	}
	l, err := wordFromNames(ab, loop)
	if err != nil {
		return word.Lasso{}, err
	}
	return word.NewLasso(p, l)
}
