package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"relive/internal/serve/cache"
)

// handleMetrics renders the server's recorder state in the Prometheus
// text exposition format: every obs counter (monotone) and gauge from
// the decision procedures and the serving layer, plus the three caches'
// hit/miss/eviction/occupancy figures. Names are prefixed with
// "relive_" and sanitized ("buchi.intersect.calls" →
// relive_buchi_intersect_calls).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	counters := s.tr.Counters()
	for _, name := range sortedKeys(counters) {
		m := metricName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, counters[name])
	}
	gauges := s.tr.Gauges()
	for _, name := range sortedKeys(gauges) {
		m := metricName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m, m, gauges[name])
	}
	writeCacheStats(&b, "system", s.systems.Stats())
	writeCacheStats(&b, "pipeline", s.pipelines.Stats())
	writeCacheStats(&b, "report", s.reports.Stats())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// writeCacheStats renders one cache's counters with a "cache" label.
func writeCacheStats(b *strings.Builder, cacheName string, st cache.Stats) {
	counter := func(metric string, v int64) {
		fmt.Fprintf(b, "# TYPE %s counter\n%s{cache=%q} %d\n", metric, metric, cacheName, v)
	}
	gauge := func(metric string, v int64) {
		fmt.Fprintf(b, "# TYPE %s gauge\n%s{cache=%q} %d\n", metric, metric, cacheName, v)
	}
	counter("relive_serve_cache_hits_total", st.Hits)
	counter("relive_serve_cache_misses_total", st.Misses)
	counter("relive_serve_cache_evictions_total", st.Evictions)
	gauge("relive_serve_cache_entries", int64(st.Len))
	gauge("relive_serve_cache_capacity", int64(st.Cap))
}

// metricName sanitizes an obs counter/gauge name into a Prometheus
// metric name.
func metricName(name string) string {
	var b strings.Builder
	b.WriteString("relive_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
