package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"relive/internal/core"
	"relive/internal/kernel"
	"relive/internal/obs"
	"relive/internal/serve/cache"
	"relive/internal/store"
)

// serverMetrics is the server's latency-histogram set: per-endpoint
// request latency, per-phase pipeline durations, queue wait, and
// request latency split by cache path. The maps are built once at New
// and only read afterwards, so observation is lock-free (the histograms
// themselves are atomic); unknown labels hit a nil histogram, whose
// Observe is a no-op.
type serverMetrics struct {
	endpoint  map[string]*obs.Histogram // full request latency, ns
	phase     map[string]*obs.Histogram // pipeline phase duration, ns, keyed "phase|kernel"
	cachePath map[string]*obs.Histogram // request latency by cache path, ns
	queueWait *obs.Histogram            // admission queue wait, ns
	storeRead *obs.Histogram            // persistent-store report probe, ns
}

// endpointLabels lists every routed endpoint; keep in sync with routes.
var endpointLabels = []string{
	"all", "liveness", "safety", "satisfies", "portfolio", "abstraction",
	"fair-abstract", "statistical", "healthz", "metrics", "debug",
}

var cachePathLabels = []string{cachePathReportHit, cachePathStoreHit, cachePathPipelineHit, cachePathMiss}

// kernelLabels are the decision-procedure kernels a check can run on;
// the phase histograms are split by the kernel in effect so a -kernel
// rollout (or bisection) can be compared phase by phase on one server.
var kernelLabels = []string{
	kernel.Auto.String(), kernel.Subset.String(), kernel.Antichain.String(),
}

func newServerMetrics() *serverMetrics {
	m := &serverMetrics{
		endpoint:  make(map[string]*obs.Histogram, len(endpointLabels)),
		phase:     make(map[string]*obs.Histogram, len(core.Phases)*len(kernelLabels)),
		cachePath: make(map[string]*obs.Histogram, len(cachePathLabels)),
		queueWait: &obs.Histogram{},
		storeRead: &obs.Histogram{},
	}
	for _, e := range endpointLabels {
		m.endpoint[e] = &obs.Histogram{}
	}
	for _, p := range core.Phases {
		for _, k := range kernelLabels {
			m.phase[p+"|"+k] = &obs.Histogram{}
		}
	}
	for _, c := range cachePathLabels {
		m.cachePath[c] = &obs.Histogram{}
	}
	return m
}

// handleMetrics renders the server's recorder state in the Prometheus
// text exposition format: every obs counter (monotone) and gauge from
// the decision procedures and the serving layer, plus the three caches'
// hit/miss/eviction/occupancy figures. Names are prefixed with
// "relive_" and sanitized ("buchi.intersect.calls" →
// relive_buchi_intersect_calls).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder

	counters := s.tr.Counters()
	for _, name := range sortedKeys(counters) {
		m := metricName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, counters[name])
	}
	gauges := s.tr.Gauges()
	for _, name := range sortedKeys(gauges) {
		m := metricName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m, m, gauges[name])
	}
	writeCacheStats(&b, "system", s.systems.Stats())
	writeCacheStats(&b, "pipeline", s.pipelines.Stats())
	writeCacheStats(&b, "report", s.reports.Stats())
	if s.store != nil {
		writeStoreStats(&b, s.store.Stats())
	}

	writeHistogramFamily(&b, "relive_serve_request_seconds", "endpoint", s.metrics.endpoint)
	writePhaseHistograms(&b, s.metrics.phase)
	writeHistogramFamily(&b, "relive_serve_cache_path_seconds", "path", s.metrics.cachePath)
	fmt.Fprintf(&b, "# TYPE relive_serve_queue_wait_seconds histogram\n")
	writeHistogramSeries(&b, "relive_serve_queue_wait_seconds", "", s.metrics.queueWait.Snapshot())
	if s.store != nil {
		fmt.Fprintf(&b, "# TYPE relive_store_read_seconds histogram\n")
		writeHistogramSeries(&b, "relive_store_read_seconds", "", s.metrics.storeRead.Snapshot())
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// histExportBoundsNS are the fixed bucket bounds published on /metrics:
// 1µs · 4^i up to ~67s. The internal quarter-octave histograms are much
// finer; CumulativeLE projects them onto this stable, small set so the
// exposition stays a few lines per series and bounds never shift
// between scrapes.
var histExportBoundsNS = func() []int64 {
	out := make([]int64, 0, 14)
	for b := int64(1000); b < 100e9; b *= 4 {
		out = append(out, b)
	}
	return out
}()

// writeHistogramFamily renders one labeled histogram family in bucket
// cumulative form.
func writeHistogramFamily(b *strings.Builder, name, labelKey string, series map[string]*obs.Histogram) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", name)
	for _, label := range sortedKeys(series) {
		writeHistogramSeries(b, name, fmt.Sprintf("%s=%q", labelKey, label), series[label].Snapshot())
	}
}

// writePhaseHistograms renders the phase-duration family, splitting the
// internal "phase|kernel" keys into two Prometheus labels.
func writePhaseHistograms(b *strings.Builder, series map[string]*obs.Histogram) {
	fmt.Fprintf(b, "# TYPE relive_check_phase_seconds histogram\n")
	for _, key := range sortedKeys(series) {
		phase, kern, _ := strings.Cut(key, "|")
		labels := fmt.Sprintf("phase=%q,kernel=%q", phase, kern)
		writeHistogramSeries(b, "relive_check_phase_seconds", labels, series[key].Snapshot())
	}
}

// writeHistogramSeries renders one histogram's _bucket/_sum/_count
// lines; labels is a preformatted `key="value"` pair or "".
func writeHistogramSeries(b *strings.Builder, name, labels string, s obs.HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, bound := range histExportBoundsNS {
		le := strconv.FormatFloat(float64(bound)/1e9, 'g', -1, 64)
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, s.CumulativeLE(bound))
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %g\n", name, labels, float64(s.Sum)/1e9)
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, s.Count)
}

// writeCacheStats renders one cache's counters with a "cache" label.
func writeCacheStats(b *strings.Builder, cacheName string, st cache.Stats) {
	counter := func(metric string, v int64) {
		fmt.Fprintf(b, "# TYPE %s counter\n%s{cache=%q} %d\n", metric, metric, cacheName, v)
	}
	gauge := func(metric string, v int64) {
		fmt.Fprintf(b, "# TYPE %s gauge\n%s{cache=%q} %d\n", metric, metric, cacheName, v)
	}
	counter("relive_serve_cache_hits_total", st.Hits)
	counter("relive_serve_cache_misses_total", st.Misses)
	counter("relive_serve_cache_evictions_total", st.Evictions)
	gauge("relive_serve_cache_entries", int64(st.Len))
	gauge("relive_serve_cache_capacity", int64(st.Cap))
}

// writeStoreStats renders the persistent store's counters and
// occupancy.
func writeStoreStats(b *strings.Builder, st store.Stats) {
	counter := func(metric string, v int64) {
		fmt.Fprintf(b, "# TYPE %s counter\n%s %d\n", metric, metric, v)
	}
	gauge := func(metric string, v int64) {
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %d\n", metric, metric, v)
	}
	counter("relive_store_hits_total", st.Hits)
	counter("relive_store_misses_total", st.Misses)
	counter("relive_store_corrupt_total", st.Corrupt)
	counter("relive_store_puts_total", st.Puts)
	counter("relive_store_evicted_total", st.Evicted)
	gauge("relive_store_artifacts", st.Artifacts)
	gauge("relive_store_bytes", st.Bytes)
	gauge("relive_store_max_bytes", st.MaxBytes)
}

// metricName sanitizes an obs counter/gauge name into a Prometheus
// metric name.
func metricName(name string) string {
	var b strings.Builder
	b.WriteString("relive_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
