package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"relive/internal/core"
	"relive/internal/obs"
	"relive/internal/serve"
)

// The request-tracing and flight-recorder side of the e2e harness:
// traceparent adoption and echo, /debug/checks listing completed and
// in-flight checks, /debug/checks/{traceID} replaying retained span
// trees, and the histogram families on /metrics.

// getJSON fetches a URL and decodes the JSON body into v, returning
// the status.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitFlightRecord polls for a completed flight record matching pred.
func waitFlightRecord(t *testing.T, s *serve.Server, pred func(serve.CheckRecord) bool) serve.CheckRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rec := range s.FlightRecords() {
			if pred(rec) {
				return rec
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no matching flight record (have %+v)", s.FlightRecords())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTraceparentAdoptionAndReplay: a caller-supplied traceparent is
// adopted as the check's trace ID, echoed on the response, recorded in
// the flight ring with phase timings, and — with the slow threshold at
// its floor — the full span tree is replayable from /debug/checks/{id}.
func TestTraceparentAdoptionAndReplay(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{SlowThreshold: time.Nanosecond})
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"

	data := `{"system":"` + strings.ReplaceAll(serverText, "\n", `\n`) + `","ltl":"G F result","no_cache":true}`
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/check/all", strings.NewReader(data))
	req.Header.Set(serve.TraceHeader, "00-"+tid+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status %d", resp.StatusCode)
	}
	echoed, ok := obs.ParseTraceparent(resp.Header.Get(serve.TraceHeader))
	if !ok || echoed != tid {
		t.Fatalf("response traceparent %q does not echo trace id %q",
			resp.Header.Get(serve.TraceHeader), tid)
	}

	rec := waitFlightRecord(t, s, func(r serve.CheckRecord) bool { return r.TraceID == tid })
	if rec.Endpoint != "all" || rec.Verdict != "ok" || rec.CachePath != "miss" {
		t.Errorf("flight record %+v, want endpoint=all verdict=ok cache_path=miss", rec)
	}
	if rec.DurationNS <= 0 || rec.StartUnixNS <= 0 {
		t.Errorf("flight record has no timing: %+v", rec)
	}
	if rec.PhaseNS[core.PhaseTrim] <= 0 || rec.PhaseNS[core.PhaseEmptiness] <= 0 {
		t.Errorf("flight record phases %+v, want non-zero trim and emptiness", rec.PhaseNS)
	}
	if !rec.Slow || !rec.HasTrace {
		t.Fatalf("check not slow-marked with a retained trace: %+v", rec)
	}

	var dump obs.Dump
	if status := getJSON(t, hs.URL+"/debug/checks/"+tid, &dump); status != http.StatusOK {
		t.Fatalf("trace replay status %d", status)
	}
	if dump.TraceID != tid || dump.OriginUnixNS == 0 {
		t.Fatalf("replayed dump not self-contained: trace_id=%q origin=%d", dump.TraceID, dump.OriginUnixNS)
	}
	var sawServe, sawPhase bool
	for _, sp := range dump.Spans {
		if sp.Name == "serve.all" && sp.Tags["outcome"] == "ok" {
			sawServe = true
		}
		if core.PhaseOf(sp.Name) != "" && sp.DurationNS >= 0 {
			sawPhase = true
		}
	}
	if !sawServe || !sawPhase {
		t.Errorf("replayed trace incomplete: serve span %v, phase span %v (%d spans)",
			sawServe, sawPhase, len(dump.Spans))
	}

	// Unknown trace IDs are a clean 404.
	if status := getJSON(t, hs.URL+"/debug/checks/"+strings.Repeat("ab", 16), nil); status != http.StatusNotFound {
		t.Errorf("unknown trace id status %d, want 404", status)
	}
}

// TestDebugChecksListing: /debug/checks reports recent checks (newest
// first) across cache paths, and every response carries a fresh trace
// ID when the caller sends none.
func TestDebugChecksListing(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	req := serve.CheckRequest{System: serverText, LTL: "G F result"}
	_, _, _ = postJSON(t, hs.URL+"/v1/check/all", req) // miss
	_, hdr, _ := postJSON(t, hs.URL+"/v1/check/all", req)
	if hdr != "hit" {
		t.Fatalf("second request not a report hit (%q)", hdr)
	}

	deadline := time.Now().Add(5 * time.Second)
	var dbg serve.DebugChecksResponse
	for {
		if status := getJSON(t, hs.URL+"/debug/checks", &dbg); status != http.StatusOK {
			t.Fatalf("/debug/checks status %d", status)
		}
		if len(dbg.Recent) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/debug/checks lists %d records, want 2", len(dbg.Recent))
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Newest first: the report hit precedes the cold miss.
	if dbg.Recent[0].CachePath != "report-hit" || dbg.Recent[1].CachePath != "miss" {
		t.Errorf("cache paths = %q, %q; want report-hit then miss",
			dbg.Recent[0].CachePath, dbg.Recent[1].CachePath)
	}
	for _, rec := range dbg.Recent[:2] {
		if !obs.ValidTraceID(rec.TraceID) {
			t.Errorf("record carries invalid trace id %q", rec.TraceID)
		}
		if rec.Verdict != "ok" || rec.Hash == "" {
			t.Errorf("record %+v, want verdict ok and a structural hash", rec)
		}
	}
	if dbg.Recent[0].Hash != dbg.Recent[1].Hash {
		t.Error("same request hashed to different structural keys")
	}
}

// TestFlightRecorderDisabled: FlightEntries < 0 turns request tracing
// off — /debug/checks 404s, no records accumulate, spans fall back to
// the process-wide trace, but traceparent echo still works.
func TestFlightRecorderDisabled(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{FlightEntries: -1})
	req := serve.CheckRequest{System: serverText, LTL: "G F result", NoCache: true}
	data, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/v1/check/all", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status %d", resp.StatusCode)
	}
	if _, ok := obs.ParseTraceparent(resp.Header.Get(serve.TraceHeader)); !ok {
		t.Error("no traceparent echoed with the flight recorder disabled")
	}
	if got := s.FlightRecords(); got != nil {
		t.Errorf("disabled recorder returned records: %+v", got)
	}
	if status := getJSON(t, hs.URL+"/debug/checks", nil); status != http.StatusNotFound {
		t.Errorf("/debug/checks status %d with recorder disabled, want 404", status)
	}
	// Degraded mode: spans land on the shared trace, as before tracing.
	if _, ok := s.Trace().Find("serve.all"); !ok {
		t.Error("serve.all span missing from the shared trace in degraded mode")
	}
}

// TestHealthzBuildInfo: /healthz carries the build identity and pool
// occupancy the ISSUE asks for.
func TestHealthzBuildInfo(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{Workers: 3})
	var h serve.HealthResponse
	if status := getJSON(t, hs.URL+"/healthz", &h); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if h.Workers != 3 || h.QueueDepth <= 0 {
		t.Errorf("pool shape = %d workers, %d queue; want 3 and a default queue", h.Workers, h.QueueDepth)
	}
	if h.GoVersion == "" || h.Version == "" {
		t.Errorf("build info empty: version %q, go %q", h.Version, h.GoVersion)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime %f < 0", h.UptimeSeconds)
	}
	build := serve.Build()
	if h.GoVersion != build.GoVersion || h.Version != build.Version {
		t.Errorf("healthz build %q/%q differs from serve.Build() %q/%q",
			h.Version, h.GoVersion, build.Version, build.GoVersion)
	}
}

// TestDebugChecksConcurrent hammers checks, /debug/checks readers, and
// trace fetches at once; run under -race via make test.
func TestDebugChecksConcurrent(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{Workers: 4, QueueDepth: 64, SlowThreshold: time.Nanosecond})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys := fmt.Sprintf("init q0\nq0 a q%d\nq%d b q0\n", 1+i%5, 1+i%5)
			status, _, body := postJSON(t, hs.URL+"/v1/check/all",
				serve.CheckRequest{System: sys, LTL: "G F a", NoCache: i%2 == 0})
			if status != http.StatusOK {
				t.Errorf("check %d: status %d: %s", i, status, body)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dbg serve.DebugChecksResponse
			getJSON(t, hs.URL+"/debug/checks", &dbg)
			for _, rec := range dbg.Recent {
				if rec.HasTrace {
					getJSON(t, hs.URL+"/debug/checks/"+rec.TraceID, nil)
					break
				}
			}
		}()
	}
	wg.Wait()
	if rec := waitFlightRecord(t, s, func(r serve.CheckRecord) bool { return r.Verdict == "ok" }); rec.TraceID == "" {
		t.Error("no completed check recorded")
	}
}
