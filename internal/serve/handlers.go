package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"relive/internal/alphabet"
	"relive/internal/core"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/obs"
	"relive/internal/store"
	"relive/internal/word"
)

// CacheHeader reports, on every check response, whether the body came
// from the report cache ("hit") or a fresh run ("miss"). It is a header
// rather than a body field so a cache hit is bit-identical to the cold
// response it replays.
const CacheHeader = "X-Relive-Cache"

// statusClientClosed is the (nginx-convention) status recorded when the
// client went away before the check finished; the connection is usually
// already dead when it is written.
const statusClientClosed = 499

// LivenessResponse is the body of /v1/check/liveness.
type LivenessResponse struct {
	Holds     bool     `json:"holds"`
	BadPrefix []string `json:"badPrefix,omitempty"`
}

// SafetyResponse is the body of /v1/check/safety.
type SafetyResponse struct {
	Holds         bool     `json:"holds"`
	Violation     []string `json:"violation,omitempty"`
	ViolationLoop []string `json:"violationLoop,omitempty"`
}

// SatisfiesResponse is the body of /v1/check/satisfies.
type SatisfiesResponse struct {
	Holds              bool     `json:"holds"`
	Counterexample     []string `json:"counterexample,omitempty"`
	CounterexampleLoop []string `json:"counterexampleLoop,omitempty"`
}

// PortfolioResponse is the body of /v1/check/portfolio; Reports follow
// the request's property order (LTLs first, then Omegas).
type PortfolioResponse struct {
	Reports []*core.Report `json:"reports"`
}

// AbstractionResponse is the body of /v1/check/abstraction.
type AbstractionResponse struct {
	Conclusion        string   `json:"conclusion"`
	AbstractHolds     bool     `json:"abstractHolds"`
	Simple            bool     `json:"simple"`
	ExtendedMaximal   bool     `json:"extendedMaximal"`
	AbstractStates    int      `json:"abstractStates"`
	AbstractBadPrefix []string `json:"abstractBadPrefix,omitempty"`
	SimplicityWitness []string `json:"simplicityWitness,omitempty"`
	Transformed       string   `json:"transformed,omitempty"`
}

// HealthResponse is the body of /healthz: serving state, worker-pool
// occupancy, the build identity (also printed by rlserve -version),
// and — when the persistent store is configured — its path, artifact
// count, and effectiveness counters, so an operator can see warm-cache
// state at a glance.
type HealthResponse struct {
	Status        string       `json:"status"` // "ok" or "draining"
	Inflight      int          `json:"inflight"`
	Admitted      int64        `json:"admitted"`
	Workers       int          `json:"workers"`
	QueueDepth    int          `json:"queue_depth"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Version       string       `json:"version"`
	GoVersion     string       `json:"go_version"`
	Store         *store.Stats `json:"store,omitempty"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/check/all", s.traced("all", true, s.checkHandler("all",
		func(ctx context.Context, sc *core.SystemCells, pc *core.PipelineCells) (any, error) {
			return core.CheckAllCellsCtx(ctx, s.recorder(ctx), pc, s.cfg.Parallelism)
		})))
	s.mux.HandleFunc("POST /v1/check/liveness", s.traced("liveness", true, s.checkHandler("liveness",
		func(ctx context.Context, sc *core.SystemCells, pc *core.PipelineCells) (any, error) {
			res, err := core.RelativeLivenessCellsCtx(ctx, s.recorder(ctx), pc)
			if err != nil {
				return nil, err
			}
			return &LivenessResponse{Holds: res.Holds, BadPrefix: names(sc.System().Alphabet(), res.BadPrefix)}, nil
		})))
	s.mux.HandleFunc("POST /v1/check/safety", s.traced("safety", true, s.checkHandler("safety",
		func(ctx context.Context, sc *core.SystemCells, pc *core.PipelineCells) (any, error) {
			res, err := core.RelativeSafetyCellsCtx(ctx, s.recorder(ctx), pc)
			if err != nil {
				return nil, err
			}
			ab := sc.System().Alphabet()
			return &SafetyResponse{
				Holds:         res.Holds,
				Violation:     names(ab, res.Violation.Prefix),
				ViolationLoop: names(ab, res.Violation.Loop),
			}, nil
		})))
	s.mux.HandleFunc("POST /v1/check/satisfies", s.traced("satisfies", true, s.checkHandler("satisfies",
		func(ctx context.Context, sc *core.SystemCells, pc *core.PipelineCells) (any, error) {
			res, err := core.SatisfiesCellsCtx(ctx, s.recorder(ctx), pc)
			if err != nil {
				return nil, err
			}
			ab := sc.System().Alphabet()
			return &SatisfiesResponse{
				Holds:              res.Holds,
				Counterexample:     names(ab, res.Counterexample.Prefix),
				CounterexampleLoop: names(ab, res.Counterexample.Loop),
			}, nil
		})))
	s.mux.HandleFunc("POST /v1/check/portfolio", s.traced("portfolio", true, s.handlePortfolio))
	s.mux.HandleFunc("POST /v1/check/abstraction", s.traced("abstraction", true, s.handleAbstraction))
	s.mux.HandleFunc("POST /v1/check/fair-abstract", s.traced("fair-abstract", true, s.handleFairAbstract))
	s.mux.HandleFunc("POST /v1/check/statistical", s.traced("statistical", true, s.handleStatistical))
	s.mux.HandleFunc("GET /healthz", s.traced("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.traced("metrics", false, s.handleMetrics))
	s.mux.HandleFunc("GET /debug/checks", s.traced("debug", false, s.handleDebugChecks))
	s.mux.HandleFunc("GET /debug/checks/{trace}", s.traced("debug", false, s.handleDebugTrace))
}

// checkHandler builds the handler for one single-property endpoint:
// decode → report-cache probe → admission → bounded, cancellable check
// → cache fill. Cache hits are served without consuming a worker slot.
func (s *Server) checkHandler(endpoint string, run func(context.Context, *core.SystemCells, *core.PipelineCells) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		obs.Count(s.tr, "serve.requests", 1)
		body, err := readBody(w, r)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		req, err := DecodeCheckRequest(body)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		sysKey, sc, err := s.resolveSystem(req.System)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		propPart, prop, err := resolveProperty(sc, req.LTL, req.Omega)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		rkey := reportKey(endpoint, sysKey, propPart)
		ri := reqFrom(r.Context())
		if ri != nil {
			ri.hash = rkey
		}
		if !req.NoCache {
			if cached, ok := s.reports.Get(rkey); ok {
				obs.Count(s.tr, "serve.cache.report_hits", 1)
				s.noteCachePath(ri, cachePathReportHit, true)
				writeCached(w, cached, true)
				return
			}
			if cached, ok := s.storeGetReport(rkey); ok {
				s.noteCachePath(ri, cachePathStoreHit, true)
				writeCached(w, cached, true)
				return
			}
		}
		release, status, aerr := s.admit(r.Context())
		if aerr != nil || status != 0 {
			s.writeAdmissionFailure(w, r, status, aerr)
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()
		defer release()

		ctx, cancel := s.checkContext(r, req.TimeoutMS)
		defer cancel()
		rec := s.recorder(r.Context())
		pc, pipeHit := s.pipelineFor(sysKey, propPart, sc, prop)
		s.noteCachePath(ri, pipePath(pipeHit), false)
		sp := obs.StartSpan(rec, "serve."+endpoint)
		out, err := run(ctx, sc, pc)
		if err != nil {
			sp.Tag("outcome", s.outcome(err))
			sp.End()
			s.writeCheckError(w, r, err)
			return
		}
		sp.Tag("outcome", "ok")
		sp.End()
		s.finish(w, r, rkey, out, req.NoCache)
	}
}

// Cache-path labels: where a check's answer came from.
const (
	cachePathReportHit   = "report-hit"   // marshaled report replayed, no worker slot
	cachePathStoreHit    = "store-hit"    // report replayed from the persistent store
	cachePathPipelineHit = "pipeline-hit" // artifact cells reused, verdicts recomputed
	cachePathMiss        = "miss"         // full cold pipeline
)

func pipePath(hit bool) string {
	if hit {
		return cachePathPipelineHit
	}
	return cachePathMiss
}

// noteCachePath records where the response came from; a report hit is
// also a completed check ("ok") since it bypasses the run entirely.
func (s *Server) noteCachePath(ri *reqInfo, path string, reportHit bool) {
	if ri == nil {
		return
	}
	ri.cachePath = path
	if reportHit {
		ri.verdict = "ok"
	}
}

// handlePortfolio checks every property of the request against one
// system, reusing the cached per-property artifact sets; all properties
// share the system's trimmed-behavior cells, so the system is trimmed
// once no matter how many properties ride along.
func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	obs.Count(s.tr, "serve.requests", 1)
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	req, err := DecodePortfolioRequest(body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	sysKey, sc, err := s.resolveSystem(req.System)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	type job struct {
		part string
		pc   *core.PipelineCells
	}
	jobs := make([]job, 0, len(req.LTLs)+len(req.Omegas))
	keyParts := []string{"portfolio", sysKey}
	allPipesHit := true
	add := func(ltlText, omegaText string) error {
		part, prop, perr := resolveProperty(sc, ltlText, omegaText)
		if perr != nil {
			return perr
		}
		pc, hit := s.pipelineFor(sysKey, part, sc, prop)
		allPipesHit = allPipesHit && hit
		jobs = append(jobs, job{part: part, pc: pc})
		keyParts = append(keyParts, part)
		return nil
	}
	for _, t := range req.LTLs {
		if err := add(t, ""); err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
	}
	for _, t := range req.Omegas {
		if err := add("", t); err != nil {
			s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
	}
	rkey := hashKey(keyParts...)
	ri := reqFrom(r.Context())
	if ri != nil {
		ri.hash = rkey
	}
	if !req.NoCache {
		if cached, ok := s.reports.Get(rkey); ok {
			obs.Count(s.tr, "serve.cache.report_hits", 1)
			s.noteCachePath(ri, cachePathReportHit, true)
			writeCached(w, cached, true)
			return
		}
		if cached, ok := s.storeGetReport(rkey); ok {
			s.noteCachePath(ri, cachePathStoreHit, true)
			writeCached(w, cached, true)
			return
		}
	}
	// A portfolio's cache path reflects its weakest link: pipeline-hit
	// only when every property's artifact set was already cached.
	s.noteCachePath(ri, pipePath(allPipesHit), false)
	release, status, aerr := s.admit(r.Context())
	if aerr != nil || status != 0 {
		s.writeAdmissionFailure(w, r, status, aerr)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer release()

	ctx, cancel := s.checkContext(r, req.TimeoutMS)
	defer cancel()
	rec := s.recorder(r.Context())
	sp := obs.StartSpan(rec, "serve.portfolio").Int("properties", int64(len(jobs)))
	resp := &PortfolioResponse{Reports: make([]*core.Report, len(jobs))}
	for i, j := range jobs {
		rep, err := core.CheckAllCellsCtx(ctx, rec, j.pc, s.cfg.Parallelism)
		if err != nil {
			sp.Tag("outcome", s.outcome(err))
			sp.End()
			s.writeCheckError(w, r, err)
			return
		}
		resp.Reports[i] = rep
	}
	sp.Tag("outcome", "ok")
	sp.End()
	s.finish(w, r, rkey, resp, req.NoCache)
}

// handleAbstraction runs the paper's abstraction method (Sections 6–8).
// The underlying procedure is not yet context-plumbed, so cancellation
// is honored at admission and between requests but not mid-check; the
// worker pool still bounds its concurrency.
func (s *Server) handleAbstraction(w http.ResponseWriter, r *http.Request) {
	obs.Count(s.tr, "serve.requests", 1)
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	req, err := DecodeAbstractionRequest(body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	sysKey, sc, err := s.resolveSystem(req.System)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	h, err := hom.Parse(sc.System().Alphabet(), req.Hom)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	eta, err := ltl.Parse(req.Eta)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	rkey := hashKey("abstraction", sysKey, req.Hom, eta.String())
	ri := reqFrom(r.Context())
	if ri != nil {
		ri.hash = rkey
	}
	if !req.NoCache {
		if cached, ok := s.reports.Get(rkey); ok {
			obs.Count(s.tr, "serve.cache.report_hits", 1)
			s.noteCachePath(ri, cachePathReportHit, true)
			writeCached(w, cached, true)
			return
		}
		if cached, ok := s.storeGetReport(rkey); ok {
			s.noteCachePath(ri, cachePathStoreHit, true)
			writeCached(w, cached, true)
			return
		}
	}
	// The abstraction route has no pipeline-cell cache; anything past
	// the report cache is a cold run.
	s.noteCachePath(ri, cachePathMiss, false)
	release, status, aerr := s.admit(r.Context())
	if aerr != nil || status != 0 {
		s.writeAdmissionFailure(w, r, status, aerr)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer release()

	ctx, cancel := s.checkContext(r, req.TimeoutMS)
	defer cancel()
	if err := ctx.Err(); err != nil {
		s.writeCheckError(w, r, err)
		return
	}
	rec := s.recorder(r.Context())
	sp := obs.StartSpan(rec, "serve.abstraction")
	rep, err := core.VerifyViaAbstractionRec(rec, sc.System(), h, eta)
	if err != nil {
		sp.Tag("outcome", "error")
		sp.End()
		s.writeError(w, r, http.StatusInternalServerError, "internal", err)
		return
	}
	sp.Tag("outcome", "ok")
	sp.End()
	resp := &AbstractionResponse{
		Conclusion:        rep.Conclusion.String(),
		AbstractHolds:     rep.AbstractHolds,
		Simple:            rep.Simple,
		ExtendedMaximal:   rep.ExtendedMaximal,
		AbstractStates:    rep.Abstract.NumStates(),
		AbstractBadPrefix: names(rep.Abstract.Alphabet(), rep.AbstractBadPrefix),
		SimplicityWitness: names(sc.System().Alphabet(), rep.SimplicityWitness),
	}
	if rep.Transformed != nil {
		resp.Transformed = rep.Transformed.String()
	}
	s.finish(w, r, rkey, resp, req.NoCache)
}

// handleFairAbstract decides fairness within abstraction: every fair
// run of the system (strong or weak transition fairness, evaluated on
// the trimmed system) satisfies Eta through Hom. The response body is
// the core.FairAbstractReport itself, so report-cache and store replays
// are bit-identical to the cold run by construction. Unlike the plain
// abstraction route this check is context-plumbed end to end, and its
// system cells come from the structural-hash system LRU, so the trimmed
// system is shared with every other endpoint.
func (s *Server) handleFairAbstract(w http.ResponseWriter, r *http.Request) {
	obs.Count(s.tr, "serve.requests", 1)
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	req, err := DecodeFairAbstractRequest(body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	sysKey, sc, err := s.resolveSystem(req.System)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	h, err := hom.Parse(sc.System().Alphabet(), req.Hom)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	kind, err := core.ParseFairnessKind(req.Fairness)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	eta, err := ltl.Parse(req.Eta)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	rkey := hashKey("fair-abstract", sysKey, req.Hom, req.Fairness, eta.String())
	ri := reqFrom(r.Context())
	if ri != nil {
		ri.hash = rkey
	}
	if !req.NoCache {
		if cached, ok := s.reports.Get(rkey); ok {
			obs.Count(s.tr, "serve.cache.report_hits", 1)
			s.noteCachePath(ri, cachePathReportHit, true)
			writeCached(w, cached, true)
			return
		}
		if cached, ok := s.storeGetReport(rkey); ok {
			s.noteCachePath(ri, cachePathStoreHit, true)
			writeCached(w, cached, true)
			return
		}
	}
	// No per-(system, hom, fairness, eta) artifact cache yet; past the
	// report cache only the system cells (trimmed system) are reused.
	s.noteCachePath(ri, cachePathMiss, false)
	release, status, aerr := s.admit(r.Context())
	if aerr != nil || status != 0 {
		s.writeAdmissionFailure(w, r, status, aerr)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer release()

	ctx, cancel := s.checkContext(r, req.TimeoutMS)
	defer cancel()
	rec := s.recorder(r.Context())
	sp := obs.StartSpan(rec, "serve.fair-abstract")
	rep, err := core.CheckFairAbstractCells(ctx, rec, sc, h, kind,
		core.FromFormula(eta, ltl.Canonical(h.Dest())))
	if err != nil {
		sp.Tag("outcome", s.outcome(err))
		sp.End()
		s.writeCheckError(w, r, err)
		return
	}
	sp.Tag("outcome", "ok")
	sp.End()
	s.finish(w, r, rkey, rep, req.NoCache)
}

// handleStatistical runs the sampling engine (internal/mc) over the
// request's system: a confidence-interval relative-liveness verdict
// whose report carries "statistical": true, sample counts, CI bounds,
// and — on "fails" — the sampled counterexample lasso. The response
// body is the core.StatisticalReport itself, a deterministic function
// of (system, property, seed, samples, steps, confidence), so
// report-cache, store, and router replays are byte-identical to the
// cold run under a fixed seed. The decoder normalizes defaults before
// keying, and the system cells come from the structural-hash system
// LRU, sharing the trimmed system with every other endpoint.
func (s *Server) handleStatistical(w http.ResponseWriter, r *http.Request) {
	obs.Count(s.tr, "serve.requests", 1)
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	req, err := DecodeStatisticalRequest(body)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	sysKey, sc, err := s.resolveSystem(req.System)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	propPart, prop, err := resolveProperty(sc, req.LTL, req.Omega)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	rkey := statisticalKey(sysKey, propPart, req)
	ri := reqFrom(r.Context())
	if ri != nil {
		ri.hash = rkey
	}
	if !req.NoCache {
		if cached, ok := s.reports.Get(rkey); ok {
			obs.Count(s.tr, "serve.cache.report_hits", 1)
			s.noteCachePath(ri, cachePathReportHit, true)
			writeCached(w, cached, true)
			return
		}
		if cached, ok := s.storeGetReport(rkey); ok {
			s.noteCachePath(ri, cachePathStoreHit, true)
			writeCached(w, cached, true)
			return
		}
	}
	// Sampling has no per-property artifact cells; past the report cache
	// only the system cells (trimmed system) are reused.
	s.noteCachePath(ri, cachePathMiss, false)
	release, status, aerr := s.admit(r.Context())
	if aerr != nil || status != 0 {
		s.writeAdmissionFailure(w, r, status, aerr)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	defer release()

	ctx, cancel := s.checkContext(r, req.TimeoutMS)
	defer cancel()
	rec := s.recorder(r.Context())
	sp := obs.StartSpan(rec, "serve.statistical")
	rep, err := core.CheckStatisticalCells(ctx, rec, sc, prop, core.StatOptions{
		Seed:       req.Seed,
		Samples:    req.Samples,
		Steps:      req.Steps,
		Confidence: req.Confidence,
		Workers:    s.cfg.Parallelism,
	})
	if err != nil {
		sp.Tag("outcome", s.outcome(err))
		sp.End()
		s.writeCheckError(w, r, err)
		return
	}
	sp.Tag("outcome", "ok")
	sp.End()
	s.finish(w, r, rkey, rep, req.NoCache)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	build := Build()
	resp := HealthResponse{
		Status:        "ok",
		Inflight:      len(s.slots),
		Admitted:      s.admitted.Load(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Version:       build.Version,
		GoVersion:     build.GoVersion,
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// finish marshals the check result, fills the report cache, and writes
// the response as a cache miss.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, rkey string, out any, noCache bool) {
	body, err := json.Marshal(out)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, "internal", err)
		return
	}
	body = append(body, '\n')
	if !noCache {
		s.reports.Add(rkey, body)
	}
	obs.Count(s.tr, "serve.completed", 1)
	if ri := reqFrom(r.Context()); ri != nil {
		ri.verdict = "ok"
	}
	writeCached(w, body, false)
	// Write-through after the response: a store write never adds
	// latency to the check that produced the report. no_cache responses
	// are not persisted either — they exist to measure the cold path.
	if !noCache {
		s.storePut(storeKindReport, rkey, body)
	}
}

// outcome classifies an error for span tagging.
func (s *Server) outcome(err error) string {
	if isContextError(err) {
		return "cancelled"
	}
	return "error"
}

// writeCheckError maps a failed check to a response: a client that went
// away gets 499 (and likely never sees it), a server-side deadline gets
// 504, anything else is an internal error. Context errors are counted
// separately from check failures — the load tests and the obs span
// "outcome" tags rely on the distinction.
func (s *Server) writeCheckError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case isContextError(err) && r.Context().Err() != nil:
		obs.Count(s.tr, "serve.cancelled", 1)
		s.writeError(w, r, statusClientClosed, "cancelled", err)
	case isContextError(err):
		obs.Count(s.tr, "serve.timeout", 1)
		s.writeError(w, r, http.StatusGatewayTimeout, "timeout", err)
	default:
		obs.Count(s.tr, "serve.errors", 1)
		s.writeError(w, r, http.StatusInternalServerError, "internal", err)
	}
}

// writeAdmissionFailure responds to a request that never got a worker
// slot: queue overflow (429 + Retry-After), draining (503), or the
// caller abandoning the queue (499).
func (s *Server) writeAdmissionFailure(w http.ResponseWriter, r *http.Request, status int, err error) {
	switch {
	case err != nil:
		obs.Count(s.tr, "serve.cancelled", 1)
		s.writeError(w, r, statusClientClosed, "cancelled", err)
	case status == http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
		s.writeError(w, r, status, "overloaded", fmt.Errorf("queue full: %d checks admitted", s.capacity))
	default:
		s.writeError(w, r, status, "draining", fmt.Errorf("server is draining"))
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, kind string, err error) {
	if ri := reqFrom(r.Context()); ri != nil && ri.verdict == "" {
		ri.verdict = verdictOfKind(kind)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), Kind: kind})
}

// verdictOfKind maps a wire error kind to the flight recorder's verdict
// vocabulary (ok | cancelled | timeout | error | shed | draining |
// bad_request).
func verdictOfKind(kind string) string {
	switch kind {
	case "internal":
		return "error"
	case "overloaded":
		return "shed"
	}
	return kind
}

func writeCached(w http.ResponseWriter, body []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set(CacheHeader, "hit")
	} else {
		w.Header().Set(CacheHeader, "miss")
	}
	w.Write(body)
}

// readBody reads a request body under the MaxBodyBytes cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return body, nil
}

// names renders a word's symbols as action names.
func names(ab *alphabet.Alphabet, w word.Word) []string {
	if len(w) == 0 {
		return nil
	}
	out := make([]string, len(w))
	for i, sym := range w {
		out[i] = ab.Name(sym)
	}
	return out
}
