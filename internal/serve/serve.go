// Package serve implements rlserve, the long-running checking service:
// an HTTP/JSON front end over the Section 4 decision procedures with
// per-request cooperative cancellation, a structural-hash keyed LRU
// cache of pipeline artifacts and reports, a bounded worker pool with
// queue-depth admission control, and graceful drain. See
// docs/SERVICE.md for the wire protocol and operational model.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"relive/internal/core"
	"relive/internal/ltl"
	"relive/internal/obs"
	"relive/internal/rex"
	"relive/internal/serve/cache"
	"relive/internal/store"
	"relive/internal/ts"
)

// Config tunes a Server. The zero value is usable: every field has a
// serving-appropriate default.
type Config struct {
	// Workers bounds the number of checks running concurrently; <= 0
	// means runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker slot beyond the running ones; past it the server sheds load
	// with 429 + Retry-After. <= 0 means 64.
	QueueDepth int
	// Parallelism is the per-check verdict fan-out passed to CheckAll
	// (three verdicts over one shared pipeline); <= 0 means 1 (serial).
	Parallelism int
	// DefaultTimeout caps a check's wall time when the request does not
	// set timeout_ms; 0 means 60s.
	DefaultTimeout time.Duration
	// SystemEntries, PipelineEntries, and ReportEntries are the LRU
	// capacities for parsed systems (with their trimmed-system /
	// behavior-automaton cells), per-(system, property) artifact sets,
	// and marshaled reports; <= 0 means 256, 1024, and 4096.
	SystemEntries   int
	PipelineEntries int
	ReportEntries   int
	// Trace receives every counter and gauge and backs /metrics; nil
	// means a fresh private Trace. Spans go to per-request traces (see
	// FlightEntries), not here, so the process-wide recorder stays
	// bounded under sustained traffic.
	Trace *obs.Trace
	// FlightEntries bounds the flight recorder's ring of completed
	// checks behind /debug/checks; 0 means 256, < 0 disables request
	// tracing and the flight recorder entirely (spans then go to Trace,
	// and the hot path does no per-request allocation).
	FlightEntries int
	// FlightTraces bounds how many full span trees of slow checks are
	// retained for /debug/checks/{traceID}; 0 means 64.
	FlightTraces int
	// SlowThreshold marks a check slow — its full span tree is retained
	// by the flight recorder; 0 means 250ms.
	SlowThreshold time.Duration
	// Logger receives one JSON-lines (or text, per its handler) record
	// per request; nil disables request logging.
	Logger *slog.Logger
	// Store is the persistent content-addressed artifact store layered
	// under the LRUs: completed reports (and canonical system texts plus
	// compiled-pipeline metadata) are written through to it, and a
	// report-LRU miss probes it before admitting the check, so replicas
	// sharing a volume — and restarts of one replica — reuse each
	// other's completed work. nil disables persistence entirely.
	Store *store.Store
}

// Server is the checking service. Create with New, mount Handler, and
// call Drain before exit. Safe for concurrent use.
type Server struct {
	cfg     Config
	tr      *obs.Trace
	log     *slog.Logger
	metrics *serverMetrics
	flight  *flightRecorder // nil when FlightEntries < 0
	started time.Time

	slots    chan struct{} // worker-slot semaphore, capacity cfg.Workers
	admitted atomic.Int64  // running + queued requests
	capacity int64         // Workers + QueueDepth
	draining atomic.Bool
	inflight sync.WaitGroup

	systems   *cache.LRU[*core.SystemCells]
	pipelines *cache.LRU[*core.PipelineCells]
	reports   *cache.LRU[[]byte]
	store     *store.Store // nil when persistence is off

	mux *http.ServeMux
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.SystemEntries <= 0 {
		cfg.SystemEntries = 256
	}
	if cfg.PipelineEntries <= 0 {
		cfg.PipelineEntries = 1024
	}
	if cfg.ReportEntries <= 0 {
		cfg.ReportEntries = 4096
	}
	if cfg.FlightEntries == 0 {
		cfg.FlightEntries = 256
	}
	if cfg.FlightTraces <= 0 {
		cfg.FlightTraces = 64
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	tr := cfg.Trace
	if tr == nil {
		tr = obs.NewTrace()
	}
	s := &Server{
		cfg:       cfg,
		tr:        tr,
		log:       cfg.Logger,
		metrics:   newServerMetrics(),
		started:   time.Now(),
		slots:     make(chan struct{}, cfg.Workers),
		capacity:  int64(cfg.Workers + cfg.QueueDepth),
		systems:   cache.New[*core.SystemCells](cfg.SystemEntries),
		pipelines: cache.New[*core.PipelineCells](cfg.PipelineEntries),
		reports:   cache.New[[]byte](cfg.ReportEntries),
		store:     cfg.Store,
	}
	if cfg.FlightEntries > 0 {
		s.flight = newFlightRecorder(cfg.FlightEntries, cfg.FlightTraces, cfg.SlowThreshold)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the service's HTTP handler (also used directly by the
// httptest harness).
func (s *Server) Handler() http.Handler { return s.mux }

// Trace returns the recorder backing /metrics, for tests and embedding
// processes.
func (s *Server) Trace() *obs.Trace { return s.tr }

// Store returns the persistent artifact store (nil when persistence is
// off), for tests and embedding processes.
func (s *Server) Store() *store.Store { return s.store }

// FlightRecords returns the flight recorder's completed checks, most
// recent first (nil when the recorder is disabled) — the programmatic
// view of GET /debug/checks.
func (s *Server) FlightRecords() []CheckRecord { return s.flight.recent() }

// FlightTrace returns the retained span tree for a slow check's trace
// ID — the programmatic view of GET /debug/checks/{traceID}.
func (s *Server) FlightTrace(traceID string) (obs.Dump, bool) { return s.flight.trace(traceID) }

// Drain puts the server into draining mode — new check requests are
// rejected with 503 and /healthz reports "draining" — and waits until
// every in-flight check has finished or ctx expires. It does not cancel
// running checks; pair it with an http.Server.Shutdown deadline (as
// cmd/rlserve does) when a hard stop is needed.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit reserves a worker slot, blocking in the bounded queue. It
// returns a release function on success; otherwise the HTTP status the
// request must be rejected with (429 when the queue is full, 503 when
// draining) or a context error when the caller gave up while queued.
func (s *Server) admit(ctx context.Context) (func(), int, error) {
	if s.draining.Load() {
		return nil, http.StatusServiceUnavailable, nil
	}
	if n := s.admitted.Add(1); n > s.capacity {
		s.admitted.Add(-1)
		obs.Count(s.tr, "serve.shed", 1)
		return nil, http.StatusTooManyRequests, nil
	}
	obs.Gauge(s.tr, "serve.queued", s.admitted.Load())
	waitStart := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.admitted.Add(-1)
		return nil, 0, ctx.Err()
	}
	if ri := reqFrom(ctx); ri != nil {
		ri.queueWait = time.Since(waitStart)
	}
	obs.Gauge(s.tr, "serve.inflight", int64(len(s.slots)))
	release := func() {
		<-s.slots
		s.admitted.Add(-1)
		obs.Gauge(s.tr, "serve.inflight", int64(len(s.slots)))
		obs.Gauge(s.tr, "serve.queued", s.admitted.Load())
	}
	return release, 0, nil
}

// checkContext derives the per-check context: the request's own context
// (so a client disconnect cancels the check) bounded by the requested
// or default timeout.
func (s *Server) checkContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// Artifact kinds in the persistent store. Reports are the hot artifact
// — a store hit skips the whole pipeline; system and pipeline artifacts
// are the canonical text and compiled-pipeline metadata keyed by the
// same structural hashes, so an operator (or a future pre-warmer) can
// see exactly which work a warm volume holds.
const (
	storeKindReport   = "report"
	storeKindSystem   = "system"
	storeKindPipeline = "pipeline"
)

// storeGetReport probes the persistent store for a completed report,
// timing the read into relive_store_read_seconds. A hit also fills the
// in-memory report LRU so the next identical request never touches
// disk.
func (s *Server) storeGetReport(rkey string) ([]byte, bool) {
	if s.store == nil {
		return nil, false
	}
	start := time.Now()
	body, ok := s.store.Get(storeKindReport, rkey)
	s.metrics.storeRead.Observe(time.Since(start).Nanoseconds())
	if !ok {
		return nil, false
	}
	obs.Count(s.tr, "serve.store.report_hits", 1)
	s.reports.Add(rkey, body)
	return body, true
}

// storePut persists one artifact, counting (not surfacing) failures: a
// full disk or lost volume must never fail the check whose answer is
// already computed.
func (s *Server) storePut(kind, key string, payload []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(kind, key, payload); err != nil {
		obs.Count(s.tr, "serve.store.put_errors", 1)
	}
}

// resolveSystem parses the request's system text and returns its
// structural key plus the cached single-flight artifact handle. The
// cached system is re-parsed from the canonical rendering, so its
// symbol numbering depends only on the key: artifacts built against it
// are interchangeable no matter how later requests spell the system.
func (s *Server) resolveSystem(text string) (string, *core.SystemCells, error) {
	sys, err := ts.ParseString(text)
	if err != nil {
		return "", nil, err
	}
	canon := sys.FormatString()
	key := hashKey("sys", canon)
	sc, hit := s.systems.GetOrAdd(key, func() *core.SystemCells {
		csys, perr := ts.ParseString(canon)
		if perr != nil {
			// Canonical text always round-trips; fall back defensively.
			csys = sys
		}
		return core.NewSystemCells(csys)
	})
	if hit {
		obs.Count(s.tr, "serve.cache.system_hits", 1)
	} else {
		s.storePut(storeKindSystem, key, []byte(canon))
	}
	return key, sc, nil
}

// resolveProperty parses the request's property against the cached
// system's alphabet and returns its structural key part plus the
// Property. Exactly one of ltlText and omegaText is non-empty
// (validated at decode time).
func resolveProperty(sc *core.SystemCells, ltlText, omegaText string) (string, core.Property, error) {
	if ltlText != "" {
		f, err := ltl.Parse(ltlText)
		if err != nil {
			return "", core.Property{}, err
		}
		// Canonical rendering: "GF result" and "G F result" share a key.
		return "ltl\x00" + f.String(), core.FromFormula(f, nil), nil
	}
	o, err := rex.ParseOmega(sc.System().Alphabet(), omegaText)
	if err != nil {
		return "", core.Property{}, err
	}
	b, err := o.Buchi()
	if err != nil {
		return "", core.Property{}, err
	}
	// ω-regex properties are keyed by their raw text: the automaton is
	// alphabet-bound, so the key must pair with the system key anyway.
	return "omega\x00" + omegaText, core.FromAutomaton(b), nil
}

// pipelineFor returns the cached artifact set for (system, property),
// creating one that shares the system's trimmed-behavior cells on a
// miss; hit reports whether the set was already cached (the flight
// recorder's pipeline-hit/miss cache-path classification).
func (s *Server) pipelineFor(sysKey, propPart string, sc *core.SystemCells, p core.Property) (*core.PipelineCells, bool) {
	key := hashKey("pipe", sysKey, propPart)
	pc, hit := s.pipelines.GetOrAdd(key, func() *core.PipelineCells {
		return core.NewPipelineCellsSharing(sc, p)
	})
	if hit {
		obs.Count(s.tr, "serve.cache.pipeline_hits", 1)
	} else if s.store != nil {
		meta, err := json.Marshal(map[string]string{"system": sysKey, "property": propPart})
		if err == nil {
			s.storePut(storeKindPipeline, key, meta)
		}
	}
	return pc, hit
}

// reportKey keys the full-report cache per endpoint.
func reportKey(endpoint, sysKey, propPart string) string {
	return hashKey("report", endpoint, sysKey, propPart)
}

// isContextError reports whether err is (or wraps) a cancellation or
// deadline error — the service's boundary between "the check was
// stopped" and "the check failed".
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
