package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"io/fs"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"relive/internal/serve"
	"relive/internal/store"
)

// The cluster suite: a 3-backend rlserve fleet sharing one on-disk
// artifact store behind a shard router, all in-process. The properties
// under test are the distributed deployment's contract — bit-identical
// answers to a single node, cluster-wide coalescing of identical
// concurrent requests, failover across backend death with warm answers
// from the shared store, and warm restarts that skip recomputation.

type clusterBackend struct {
	s  *serve.Server
	hs *httptest.Server
}

type cluster struct {
	dir      string
	backends []*clusterBackend
	router   *serve.Router
	rs       *httptest.Server
}

// startBackend boots one rlserve replica over the shared store dir.
func startBackend(t *testing.T, dir string) *clusterBackend {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{Store: st})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return &clusterBackend{s: s, hs: hs}
}

// startCluster boots n replicas over one store dir plus a router with a
// fast health probe, and waits until the router sees every backend.
func startCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{dir: t.TempDir()}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		b := startBackend(t, c.dir)
		c.backends = append(c.backends, b)
		urls[i] = b.hs.URL
	}
	rt, err := serve.NewRouter(serve.RouterConfig{
		Backends:       urls,
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	c.router = rt
	c.rs = httptest.NewServer(rt.Handler())
	t.Cleanup(c.rs.Close)
	return c
}

// waitHealthy polls the router until exactly want backends are healthy.
func (c *cluster) waitHealthy(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		healthy := 0
		for _, b := range c.router.Backends() {
			if b.Healthy {
				healthy++
			}
		}
		if healthy == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("router never converged to %d healthy backends: %+v", want, c.router.Backends())
}

// postFull posts body and returns status, all response headers, and the
// raw bytes — the cluster tests care about routing headers postJSON
// does not surface.
func postFull(t *testing.T, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// clusterBattery is the request mix the bit-identity and failover tests
// replay: every endpoint shape, several distinct systems.
func clusterBattery() []struct {
	endpoint string
	body     any
} {
	battery := []struct {
		endpoint string
		body     any
	}{
		{"all", serve.CheckRequest{System: serverText, LTL: "G F result"}},
		{"liveness", serve.CheckRequest{System: serverText, LTL: "G F result"}},
		{"safety", serve.CheckRequest{System: serverText, LTL: "G F result"}},
		{"satisfies", serve.CheckRequest{System: serverText, LTL: "G F result"}},
		{"all", serve.CheckRequest{System: serverText, Omega: "( request result | request reject ) ^w"}},
		{"portfolio", serve.PortfolioRequest{System: serverText, LTLs: []string{"G F result", "G F request"}}},
		{"abstraction", serve.AbstractionRequest{
			System: concreteText,
			Hom:    "request=>request, result=>result, reject=>reject, accept=>, deny=>",
			Eta:    "G F ( result | reject )",
		}},
		{"fair-abstract", serve.FairAbstractRequest{
			System:   serverText,
			Hom:      "request=>req, result=>ok, reject=>",
			Fairness: "strong",
			Eta:      "G F ok",
		}},
		{"fair-abstract", serve.FairAbstractRequest{
			System:   serverText,
			Hom:      "request=>req, result=>ok, reject=>",
			Fairness: "weak",
			Eta:      "G F ok",
		}},
	}
	// A few extra systems so the ring has several placement keys to
	// spread — without them every check lands on one backend.
	for i := 0; i < 6; i++ {
		battery = append(battery, struct {
			endpoint string
			body     any
		}{"all", serve.CheckRequest{System: bigSystemText(40 + 13*i), LTL: "G F a"}})
	}
	return battery
}

// TestClusterBitIdenticalToSingleNode: the same battery against a
// plain single-node server and against the 3-backend cluster must
// produce byte-identical bodies — the router's core contract.
func TestClusterBitIdenticalToSingleNode(t *testing.T) {
	_, single := newTestServer(t, serve.Config{})
	c := startCluster(t, 3)

	for i, req := range clusterBattery() {
		wantStatus, _, wantBody := postFull(t, single.URL+"/v1/check/"+req.endpoint, req.body)
		gotStatus, hdr, gotBody := postFull(t, c.rs.URL+"/v1/check/"+req.endpoint, req.body)
		if gotStatus != wantStatus {
			t.Fatalf("battery[%d] %s: cluster status %d, single-node %d\ncluster: %s\nsingle: %s",
				i, req.endpoint, gotStatus, wantStatus, gotBody, wantBody)
		}
		if !bytes.Equal(gotBody, wantBody) {
			t.Fatalf("battery[%d] %s: cluster answer differs from single node\ncluster: %s\nsingle: %s",
				i, req.endpoint, gotBody, wantBody)
		}
		if hdr.Get(serve.BackendHeader) == "" {
			t.Fatalf("battery[%d] %s: response missing %s header", i, req.endpoint, serve.BackendHeader)
		}
	}

	// Malformed requests are rejected at the router with the same status
	// and error kind a backend produces.
	bad := serve.CheckRequest{System: "init", LTL: "G F a"} // truncated system line
	sStatus, _, sBody := postFull(t, single.URL+"/v1/check/all", bad)
	rStatus, _, rBody := postFull(t, c.rs.URL+"/v1/check/all", bad)
	if rStatus != sStatus || rStatus != http.StatusBadRequest {
		t.Fatalf("bad request: cluster %d (%s), single %d (%s)", rStatus, rBody, sStatus, sBody)
	}
	var sErr, rErr serve.ErrorResponse
	decodeInto(t, sBody, &sErr)
	decodeInto(t, rBody, &rErr)
	if rErr.Kind != sErr.Kind {
		t.Fatalf("bad request kind: cluster %q, single %q", rErr.Kind, sErr.Kind)
	}
}

// TestClusterCoalescing: many concurrent identical expensive requests
// through the router collapse into ONE backend check; everyone shares
// the same bytes.
func TestClusterCoalescing(t *testing.T) {
	c := startCluster(t, 3)
	req := serve.CheckRequest{System: bigSystemText(2500), LTL: slowLTL}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	const n = 120
	type result struct {
		status    int
		coalesced bool
		body      []byte
	}
	results := make([]result, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(c.rs.URL+"/v1/check/all", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = result{
				status:    resp.StatusCode,
				coalesced: resp.Header.Get(serve.CoalescedHeader) == "1",
				body:      raw,
			}
		}(i)
	}
	close(start)
	wg.Wait()

	coalesced := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("request %d: body differs from request 0", i)
		}
		if r.coalesced {
			coalesced++
		}
	}
	var proxied int64
	for _, b := range c.router.Backends() {
		proxied += b.Proxied
	}
	if proxied != 1 {
		t.Fatalf("%d identical concurrent requests reached the backends %d times, want exactly 1", n, proxied)
	}
	if coalesced < n-1 {
		t.Fatalf("only %d/%d responses were coalesced, want %d", coalesced, n, n-1)
	}
	t.Logf("coalescing: %d concurrent identical requests -> %d backend check(s), %d shared answers", n, proxied, coalesced)
}

// TestClusterFailoverAndWarmStore: kill the backend that owns a key —
// the router fails over and the surviving backend answers bit-identically
// straight from the shared store; restart the backend on the same port
// and it rejoins warm.
func TestClusterFailoverAndWarmStore(t *testing.T) {
	c := startCluster(t, 3)
	battery := clusterBattery()

	type answer struct {
		status  int
		body    []byte
		backend string
	}
	first := make([]answer, len(battery))
	for i, req := range battery {
		status, hdr, body := postFull(t, c.rs.URL+"/v1/check/"+req.endpoint, req.body)
		if status != http.StatusOK {
			t.Fatalf("battery[%d] %s: status %d: %s", i, req.endpoint, status, body)
		}
		first[i] = answer{status, body, hdr.Get(serve.BackendHeader)}
	}

	// Kill the backend that served the most of the battery.
	served := map[string]int{}
	for _, a := range first {
		served[a.backend]++
	}
	var victimURL string
	for url, n := range served {
		if victimURL == "" || n > served[victimURL] {
			victimURL = url
		}
	}
	var victim *clusterBackend
	for _, b := range c.backends {
		if b.hs.URL == victimURL {
			victim = b
		}
	}
	if victim == nil {
		t.Fatalf("no backend matches %q", victimURL)
	}
	victimAddr := victim.hs.Listener.Addr().String()
	victim.hs.CloseClientConnections()
	victim.hs.Close()
	c.waitHealthy(t, 2)

	// The full battery still answers, bit-identically, and the requests
	// that were owned by the victim come warm off the shared store.
	rerouted, warm := 0, 0
	for i, req := range battery {
		status, hdr, body := postFull(t, c.rs.URL+"/v1/check/"+req.endpoint, req.body)
		if status != http.StatusOK {
			t.Fatalf("battery[%d] %s after kill: status %d: %s", i, req.endpoint, status, body)
		}
		if !bytes.Equal(body, first[i].body) {
			t.Fatalf("battery[%d] %s: answer changed after backend death\nbefore: %s\nafter: %s",
				i, req.endpoint, first[i].body, body)
		}
		if hdr.Get(serve.BackendHeader) == victimURL {
			t.Fatalf("battery[%d]: routed to the dead backend %s", i, victimURL)
		}
		if first[i].backend == victimURL {
			rerouted++
			if hdr.Get(serve.CacheHeader) == "hit" {
				warm++
			}
		}
	}
	if rerouted == 0 {
		t.Fatal("the killed backend served nothing in round one; the test lost its subject")
	}
	if warm == 0 {
		t.Fatalf("none of the %d rerouted requests hit the shared store on the surviving backend", rerouted)
	}
	t.Logf("failover: %d requests rerouted off the dead backend, %d answered warm from the shared store", rerouted, warm)

	// Restart a replacement replica on the victim's address, over the
	// same store. The router's probe must recover it, and its first
	// answer for a key it never computed must come warm off the store.
	l, err := net.Listen("tcp", victimAddr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", victimAddr, err)
	}
	st, err := store.Open(c.dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replacement := serve.New(serve.Config{Store: st})
	hs2 := &httptest.Server{Listener: l, Config: &http.Server{Handler: replacement.Handler()}}
	hs2.Start()
	t.Cleanup(hs2.Close)
	c.waitHealthy(t, 3)

	recovered := 0
	for i, req := range battery {
		if first[i].backend != victimURL {
			continue
		}
		status, hdr, body := postFull(t, c.rs.URL+"/v1/check/"+req.endpoint, req.body)
		if status != http.StatusOK || !bytes.Equal(body, first[i].body) {
			t.Fatalf("battery[%d] after restart: status %d, identical=%v", i, status, bytes.Equal(body, first[i].body))
		}
		if hdr.Get(serve.BackendHeader) == victimURL {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("router never routed back to the restarted backend")
	}
	stats := replacement.Store().Stats()
	if stats.Hits == 0 {
		t.Fatalf("restarted backend recomputed everything; store stats: %+v", stats)
	}
	t.Logf("restart: %d keys returned to the restarted backend, store hits %d", recovered, stats.Hits)
}

// TestWarmRestartStore: a fresh server over a populated store answers
// bit-identically without recomputing, and the warm path is measurably
// faster than the cold one — the BENCH_05 claim, in miniature.
func TestWarmRestartStore(t *testing.T) {
	dir := t.TempDir()
	requests := make([]serve.CheckRequest, 0, 8)
	for i := 0; i < 8; i++ {
		requests = append(requests, serve.CheckRequest{System: bigSystemText(400 + 60*i), LTL: slowLTL})
	}

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := serve.New(serve.Config{Store: st1})
	hs1 := httptest.NewServer(s1.Handler())
	cold := make([]time.Duration, len(requests))
	firstBodies := make([][]byte, len(requests))
	for i, req := range requests {
		begin := time.Now()
		status, _, body := postFull(t, hs1.URL+"/v1/check/all", req)
		cold[i] = time.Since(begin)
		if status != http.StatusOK {
			t.Fatalf("cold %d: status %d: %s", i, status, body)
		}
		firstBodies[i] = body
	}
	hs1.Close()

	// A brand-new process over the same volume: empty LRUs, warm store.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := serve.New(serve.Config{Store: st2})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	warm := make([]time.Duration, len(requests))
	for i, req := range requests {
		begin := time.Now()
		status, hdr, body := postFull(t, hs2.URL+"/v1/check/all", req)
		warm[i] = time.Since(begin)
		if status != http.StatusOK {
			t.Fatalf("warm %d: status %d: %s", i, status, body)
		}
		if hdr.Get(serve.CacheHeader) != "hit" {
			t.Fatalf("warm %d: cache header %q, want hit (store should have answered)", i, hdr.Get(serve.CacheHeader))
		}
		if !bytes.Equal(body, firstBodies[i]) {
			t.Fatalf("warm %d: restart changed the answer\ncold: %s\nwarm: %s", i, firstBodies[i], body)
		}
	}
	if s2.Store().Stats().Hits == 0 {
		t.Fatal("warm server reports zero store hits")
	}

	cm, wm := median(cold), median(warm)
	t.Logf("warm restart: cold median %v, warm median %v (%.1fx)", cm, wm, float64(cm)/float64(wm))
	if wm >= cm {
		t.Fatalf("warm restart no faster than cold: cold median %v, warm median %v", cm, wm)
	}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// TestClusterStoreCorruptionRecomputes: trash every artifact on the
// shared volume — a fresh server must treat them as misses, recompute,
// and still answer bit-identically. Torn writes never become answers.
func TestClusterStoreCorruptionRecomputes(t *testing.T) {
	dir := t.TempDir()
	req := serve.CheckRequest{System: serverText, LTL: "G F result"}

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := serve.New(serve.Config{Store: st1})
	hs1 := httptest.NewServer(s1.Handler())
	status, _, want := postFull(t, hs1.URL+"/v1/check/all", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, want)
	}
	hs1.Close()

	// Overwrite every artifact with garbage shorter than a valid header.
	corrupted := 0
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".art" {
			return err
		}
		corrupted++
		return os.WriteFile(path, []byte("torn"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no artifacts were written to the store")
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := serve.New(serve.Config{Store: st2})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	status, hdr, got := postFull(t, hs2.URL+"/v1/check/all", req)
	if status != http.StatusOK {
		t.Fatalf("after corruption: status %d: %s", status, got)
	}
	if hdr.Get(serve.CacheHeader) == "hit" {
		t.Fatal("corrupt artifact was served as a cache hit")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recomputed answer differs\nbefore: %s\nafter: %s", want, got)
	}
	if s2.Store().Stats().Corrupt == 0 {
		t.Fatalf("store did not record the corruption: %+v", s2.Store().Stats())
	}
}

// TestRouterHealthzAndMetrics: the router's own observability surface
// reflects the cluster.
func TestRouterHealthzAndMetrics(t *testing.T) {
	c := startCluster(t, 3)
	_, _, _ = postFull(t, c.rs.URL+"/v1/check/all", serve.CheckRequest{System: serverText, LTL: "G F result"})

	resp, err := http.Get(c.rs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h serve.RouterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Backends) != 3 {
		t.Fatalf("healthz = %+v", h)
	}
	var proxied int64
	for _, b := range h.Backends {
		proxied += b.Proxied
	}
	if proxied == 0 {
		t.Fatal("healthz shows zero proxied requests after a check")
	}

	mresp, err := http.Get(c.rs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"relive_route_requests_total",
		"relive_route_coalesced_total",
		"relive_route_backend_healthy",
		"relive_route_backend_seconds_bucket",
	} {
		if !bytes.Contains(metrics, []byte(series)) {
			t.Fatalf("router /metrics missing %s:\n%s", series, metrics)
		}
	}

	// When every backend dies, the router degrades loudly instead of
	// hanging: /healthz goes 503 and checks get a typed 503 answer.
	for _, b := range c.backends {
		b.hs.Close()
	}
	c.waitHealthy(t, 0)
	status, _, body := postFull(t, c.rs.URL+"/v1/check/all", serve.CheckRequest{System: serverText, LTL: "G F request"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("check against dead cluster: status %d: %s", status, body)
	}
	var er serve.ErrorResponse
	decodeInto(t, body, &er)
	if er.Kind != "unavailable" {
		t.Fatalf("error kind %q, want unavailable", er.Kind)
	}
	hresp, err := http.Get(c.rs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead cluster: status %d", hresp.StatusCode)
	}
}
