package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"relive/internal/mc"
)

// Wire format of the checking service. Every check endpoint accepts a
// JSON body; decoding is strict (unknown fields are errors) and
// validated before any automaton work starts, so the service can reject
// malformed requests without spending a worker slot. DecodeCheckRequest
// and DecodePortfolioRequest are the exact functions the fuzz target
// FuzzServeRequest drives.

// Wire-level limits. Requests beyond these are rejected with 400 before
// parsing; they bound the parser work a single malformed or hostile
// request can cause, independently of the worker-pool admission control.
const (
	// MaxBodyBytes bounds a request body (enforced via MaxBytesReader).
	MaxBodyBytes = 1 << 20
	// maxSystemBytes bounds the transition-system text inside a body.
	maxSystemBytes = 1 << 19
	// maxPropertyBytes bounds one property (LTL or ω-regex) text.
	maxPropertyBytes = 1 << 12
	// maxPortfolioProps bounds the number of properties per portfolio
	// request.
	maxPortfolioProps = 64
	// maxTimeoutMS bounds the per-request timeout a client may ask for.
	maxTimeoutMS = 10 * 60 * 1000
)

// CheckRequest is the body of the single-property check endpoints
// (/v1/check/all, /v1/check/liveness, /v1/check/safety,
// /v1/check/satisfies). Exactly one of LTL and Omega must be set.
type CheckRequest struct {
	// System is the transition system in the text format of
	// ts.Parse: "init <state>" plus "<from> <action> <to>" lines.
	System string `json:"system"`
	// LTL is a PLTL property ("G F result" or the paper's "□◇result").
	LTL string `json:"ltl,omitempty"`
	// Omega is an ω-regular property "U ( V ) ^w" over the system's
	// action names, instead of LTL.
	Omega string `json:"omega,omitempty"`
	// TimeoutMS optionally caps this request's wall time; the check is
	// cancelled cooperatively when it expires. 0 means the server
	// default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache skips the report cache (artifact cells are still shared);
	// load tests use it to measure cold-path latency.
	NoCache bool `json:"no_cache,omitempty"`
}

// PortfolioRequest is the body of /v1/check/portfolio: CheckAll for
// every listed property against one system, sharing the trimmed system
// and behavior automaton across properties.
type PortfolioRequest struct {
	System string `json:"system"`
	// LTLs are PLTL property texts; verdicts come back in this order,
	// after any Omegas.
	LTLs []string `json:"ltls,omitempty"`
	// Omegas are ω-regex property texts, appended after LTLs.
	Omegas    []string `json:"omegas,omitempty"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
	NoCache   bool     `json:"no_cache,omitempty"`
}

// AbstractionRequest is the body of /v1/check/abstraction: the paper's
// abstraction method end to end (abstract under Hom, check Eta there,
// conclude per Corollary 8.4).
type AbstractionRequest struct {
	System string `json:"system"`
	// Hom is an abstracting homomorphism as "a=>x, b=>" mapping lines;
	// empty targets hide letters.
	Hom string `json:"hom"`
	// Eta is the abstract PLTL property in Σ'-normal form.
	Eta       string `json:"eta"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
}

// FairAbstractRequest is the body of /v1/check/fair-abstract: decide
// whether every fair run of the system satisfies Eta through Hom
// (fairness within behavior abstraction).
type FairAbstractRequest struct {
	System string `json:"system"`
	// Hom is an abstracting homomorphism as "a=>x, b=>" mapping lines;
	// empty targets hide letters.
	Hom string `json:"hom"`
	// Fairness selects the notion: "strong" or "weak".
	Fairness string `json:"fairness"`
	// Eta is the abstract PLTL property in Σ'-normal form.
	Eta       string `json:"eta"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	NoCache   bool   `json:"no_cache,omitempty"`
}

// Statistical sampling limits: caps on the per-request budget so one
// request cannot buy unbounded CPU, and a cap on the walk product
// (samples × steps) analogous to the body-size caps.
const (
	maxStatSamples = 100_000
	maxStatSteps   = 65_536
	maxStatWork    = 10_000_000 // samples × steps
)

// StatisticalRequest is the body of /v1/check/statistical: a
// sampling-based relative-liveness verdict with confidence-interval
// bounds ("statistical": true in the report, never claimed exact).
// Exactly one of LTL and Omega must be set. Zero Seed/Samples/Steps/
// Confidence take the engine defaults; the decoder normalizes them
// before the request is keyed, so a body spelling the defaults
// explicitly shares its cache entry with one omitting them.
type StatisticalRequest struct {
	System string `json:"system"`
	LTL    string `json:"ltl,omitempty"`
	Omega  string `json:"omega,omitempty"`
	// Seed fixes the sampling RNG; same seed + budget + confidence ⇒
	// byte-identical report. Defaults to 0.
	Seed int64 `json:"seed,omitempty"`
	// Samples and Steps set the budget: Samples random walks of Steps
	// steps each (defaults 400 × 256).
	Samples int `json:"samples,omitempty"`
	Steps   int `json:"steps,omitempty"`
	// Confidence is the two-sided CI level (default 0.99).
	Confidence float64 `json:"confidence,omitempty"`
	TimeoutMS  int     `json:"timeout_ms,omitempty"`
	NoCache    bool    `json:"no_cache,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: "bad_request", "overloaded",
	// "timeout", "cancelled", "draining", or "internal".
	Kind string `json:"kind"`
}

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// garbage.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON body")
	}
	return nil
}

// DecodeCheckRequest parses and validates a single-check request body.
func DecodeCheckRequest(data []byte) (*CheckRequest, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", MaxBodyBytes)
	}
	var req CheckRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := validateSystemText(req.System); err != nil {
		return nil, err
	}
	if (req.LTL == "") == (req.Omega == "") {
		return nil, fmt.Errorf("exactly one of \"ltl\" and \"omega\" is required")
	}
	if err := validatePropertyText(req.LTL); err != nil {
		return nil, err
	}
	if err := validatePropertyText(req.Omega); err != nil {
		return nil, err
	}
	if err := validateTimeout(req.TimeoutMS); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodePortfolioRequest parses and validates a portfolio request body.
func DecodePortfolioRequest(data []byte) (*PortfolioRequest, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", MaxBodyBytes)
	}
	var req PortfolioRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := validateSystemText(req.System); err != nil {
		return nil, err
	}
	n := len(req.LTLs) + len(req.Omegas)
	if n == 0 {
		return nil, fmt.Errorf("at least one property (\"ltls\" or \"omegas\") is required")
	}
	if n > maxPortfolioProps {
		return nil, fmt.Errorf("portfolio exceeds %d properties", maxPortfolioProps)
	}
	for _, t := range req.LTLs {
		if t == "" {
			return nil, fmt.Errorf("empty property in \"ltls\"")
		}
		if err := validatePropertyText(t); err != nil {
			return nil, err
		}
	}
	for _, t := range req.Omegas {
		if t == "" {
			return nil, fmt.Errorf("empty property in \"omegas\"")
		}
		if err := validatePropertyText(t); err != nil {
			return nil, err
		}
	}
	if err := validateTimeout(req.TimeoutMS); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeAbstractionRequest parses and validates an abstraction request
// body.
func DecodeAbstractionRequest(data []byte) (*AbstractionRequest, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", MaxBodyBytes)
	}
	var req AbstractionRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := validateSystemText(req.System); err != nil {
		return nil, err
	}
	if req.Hom == "" {
		return nil, fmt.Errorf("\"hom\" is required")
	}
	if len(req.Hom) > maxPropertyBytes {
		return nil, fmt.Errorf("hom text exceeds %d bytes", maxPropertyBytes)
	}
	if req.Eta == "" {
		return nil, fmt.Errorf("\"eta\" is required")
	}
	if err := validatePropertyText(req.Eta); err != nil {
		return nil, err
	}
	if err := validateTimeout(req.TimeoutMS); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeFairAbstractRequest parses and validates a fair-abstract
// request body.
func DecodeFairAbstractRequest(data []byte) (*FairAbstractRequest, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", MaxBodyBytes)
	}
	var req FairAbstractRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := validateSystemText(req.System); err != nil {
		return nil, err
	}
	if req.Hom == "" {
		return nil, fmt.Errorf("\"hom\" is required")
	}
	if len(req.Hom) > maxPropertyBytes {
		return nil, fmt.Errorf("hom text exceeds %d bytes", maxPropertyBytes)
	}
	if req.Fairness != "strong" && req.Fairness != "weak" {
		return nil, fmt.Errorf("\"fairness\" must be \"strong\" or \"weak\"")
	}
	if req.Eta == "" {
		return nil, fmt.Errorf("\"eta\" is required")
	}
	if err := validatePropertyText(req.Eta); err != nil {
		return nil, err
	}
	if err := validateTimeout(req.TimeoutMS); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeStatisticalRequest parses, validates, and *normalizes* a
// statistical request body: engine defaults are filled in here, before
// any keying, so explicit-default and omitted-default bodies coalesce
// in every cache and in the router.
func DecodeStatisticalRequest(data []byte) (*StatisticalRequest, error) {
	if len(data) > MaxBodyBytes {
		return nil, fmt.Errorf("body exceeds %d bytes", MaxBodyBytes)
	}
	var req StatisticalRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := validateSystemText(req.System); err != nil {
		return nil, err
	}
	if (req.LTL == "") == (req.Omega == "") {
		return nil, fmt.Errorf("exactly one of \"ltl\" and \"omega\" is required")
	}
	if err := validatePropertyText(req.LTL); err != nil {
		return nil, err
	}
	if err := validatePropertyText(req.Omega); err != nil {
		return nil, err
	}
	if req.Samples < 0 || req.Samples > maxStatSamples {
		return nil, fmt.Errorf("\"samples\" must be in [0, %d]", maxStatSamples)
	}
	if req.Steps < 0 || req.Steps > maxStatSteps {
		return nil, fmt.Errorf("\"steps\" must be in [0, %d]", maxStatSteps)
	}
	if req.Confidence < 0 || req.Confidence >= 1 {
		return nil, fmt.Errorf("\"confidence\" must be in [0, 1)")
	}
	if req.Samples == 0 {
		req.Samples = mc.DefaultSamples
	}
	if req.Steps == 0 {
		req.Steps = mc.DefaultSteps
	}
	if req.Confidence == 0 {
		req.Confidence = mc.DefaultConfidence
	}
	if work := int64(req.Samples) * int64(req.Steps); work > maxStatWork {
		return nil, fmt.Errorf("sampling budget samples*steps = %d exceeds %d", work, maxStatWork)
	}
	if err := validateTimeout(req.TimeoutMS); err != nil {
		return nil, err
	}
	return &req, nil
}

// statisticalKey is the report-cache key of a *normalized* statistical
// request; the router computes the same key from the same decoder, so
// cluster coalescing merges exactly what a backend's cache would.
func statisticalKey(sysKey, propPart string, req *StatisticalRequest) string {
	return hashKey("statistical", sysKey, propPart,
		strconv.FormatInt(req.Seed, 10),
		strconv.Itoa(req.Samples),
		strconv.Itoa(req.Steps),
		strconv.FormatFloat(req.Confidence, 'g', -1, 64))
}

func validateSystemText(text string) error {
	if text == "" {
		return fmt.Errorf("\"system\" is required")
	}
	if len(text) > maxSystemBytes {
		return fmt.Errorf("system text exceeds %d bytes", maxSystemBytes)
	}
	return nil
}

func validatePropertyText(text string) error {
	if len(text) > maxPropertyBytes {
		return fmt.Errorf("property text exceeds %d bytes", maxPropertyBytes)
	}
	return nil
}

func validateTimeout(ms int) error {
	if ms < 0 {
		return fmt.Errorf("\"timeout_ms\" must be non-negative")
	}
	if ms > maxTimeoutMS {
		return fmt.Errorf("\"timeout_ms\" exceeds %d", maxTimeoutMS)
	}
	return nil
}
