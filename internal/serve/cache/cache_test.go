package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = (%d, %v), want (1, true)", v, ok)
	}
	// "a" was just used, so adding "c" must evict "b".
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("recently used entry evicted: (%d, %v)", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Len != 2 || st.Cap != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, len 2, cap 2", st)
	}
}

func TestLRUAddReplaces(t *testing.T) {
	c := New[int](2)
	c.Add("a", 1)
	c.Add("a", 9)
	if v, ok := c.Get("a"); !ok || v != 9 {
		t.Fatalf("Get after replace = (%d, %v), want (9, true)", v, ok)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1 (replace must not duplicate)", n)
	}
}

// TestLRUEvictionBound: 10k distinct keys through a small cache never
// grow it past its capacity — the ISSUE's memory-bound requirement.
func TestLRUEvictionBound(t *testing.T) {
	const cap = 64
	c := New[int](cap)
	for i := 0; i < 10_000; i++ {
		c.Add(fmt.Sprintf("k%d", i), i)
		if n := c.Len(); n > cap {
			t.Fatalf("after %d inserts Len = %d > cap %d", i+1, n, cap)
		}
	}
	st := c.Stats()
	if st.Len != cap {
		t.Fatalf("final Len = %d, want %d", st.Len, cap)
	}
	if st.Evictions != 10_000-cap {
		t.Fatalf("evictions = %d, want %d", st.Evictions, 10_000-cap)
	}
	// The survivors are exactly the most recent cap keys.
	for i := 10_000 - cap; i < 10_000; i++ {
		if v, ok := c.Get(fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Fatalf("recent key k%d missing: (%d, %v)", i, v, ok)
		}
	}
}

// TestLRUGetOrAddConverges: racing constructors for one key all observe
// the same resident value even when the builds return distinct values.
func TestLRUGetOrAddConverges(t *testing.T) {
	c := New[*int](8)
	var wg sync.WaitGroup
	results := make([]*int, 32)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.GetOrAdd("k", func() *int { v := i; return &v })
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different resident value", i)
		}
	}
}

// TestLRUConcurrentHammer drives gets, adds, and GetOrAdds from many
// goroutines across overlapping keys; run under -race this is the
// cache's data-race certification. Invariants: no panic, Len ≤ cap,
// hits+misses add up.
func TestLRUConcurrentHammer(t *testing.T) {
	const cap = 32
	c := New[int](cap)
	var ops atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%100)
				switch i % 3 {
				case 0:
					c.Add(k, i)
				case 1:
					c.Get(k)
				default:
					if v, _ := c.GetOrAdd(k, func() int { return i }); v < 0 {
						t.Error("negative value from GetOrAdd")
					}
				}
				ops.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > cap {
		t.Fatalf("Len = %d > cap %d after hammer", n, cap)
	}
	st := c.Stats()
	if st.Hits+st.Misses <= 0 {
		t.Fatalf("stats recorded no lookups: %+v", st)
	}
	if ops.Load() != 8*2000 {
		t.Fatalf("ops = %d, want %d", ops.Load(), 8*2000)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := New[int](0) // clamped to 1
	c.Add("a", 1)
	c.Add("b", 2)
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted entry still resident")
	}
}
