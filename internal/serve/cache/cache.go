// Package cache provides the size-bounded LRU used by the checking
// service to keep decision-pipeline artifacts — parsed systems with
// their single-flight cells, compiled property automata, and full
// reports — alive across requests. Entries are keyed by structural
// hashes (see serve), so two requests spelling the same system
// differently still share one entry.
package cache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's effectiveness.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Len       int   `json:"len"`
	Cap       int   `json:"cap"`
}

// LRU is a mutex-guarded, size-bounded least-recently-used map from
// string keys to values. All methods are safe for concurrent use. The
// zero value is not usable; call New.
//
// LRU deliberately stores values, not futures: a value inserted via
// GetOrAdd is constructed outside the lock and may race with another
// constructor for the same key, in which case one construction wins and
// the other is discarded. The pipeline artifacts stored here are
// themselves single-flight cells (core.SystemCells, core.PipelineCells),
// so the expensive work still coalesces — only the cheap handle
// allocation can be duplicated.
type LRU[V any] struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *entry[V]
	entries map[string]*list.Element

	hits, misses, evictions int64
}

type entry[V any] struct {
	key string
	val V
}

// New returns an empty LRU holding at most max entries; max < 1 is
// treated as 1.
func New[V any](max int) *LRU[V] {
	if max < 1 {
		max = 1
	}
	return &LRU[V]{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the value for key, marking it most recently used.
func (l *LRU[V]) Get(key string) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		l.hits++
		return el.Value.(*entry[V]).val, true
	}
	l.misses++
	var zero V
	return zero, false
}

// Add inserts or replaces the value for key, evicting the least
// recently used entry when the cache is full.
func (l *LRU[V]) Add(key string, val V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.add(key, val)
}

func (l *LRU[V]) add(key string, val V) {
	if el, ok := l.entries[key]; ok {
		el.Value.(*entry[V]).val = val
		l.order.MoveToFront(el)
		return
	}
	l.entries[key] = l.order.PushFront(&entry[V]{key: key, val: val})
	for l.order.Len() > l.max {
		back := l.order.Back()
		l.order.Remove(back)
		delete(l.entries, back.Value.(*entry[V]).key)
		l.evictions++
	}
}

// GetOrAdd returns the value for key, constructing and inserting it
// with make on a miss. The returned bool reports whether this was a
// hit. make runs outside the lock; when two goroutines miss on the same
// key concurrently, the later Add wins and the earlier value is
// returned only to its own caller.
func (l *LRU[V]) GetOrAdd(key string, make func() V) (V, bool) {
	if v, ok := l.Get(key); ok {
		return v, true
	}
	v := make()
	l.mu.Lock()
	defer l.mu.Unlock()
	// A racing constructor may have inserted meanwhile; prefer the
	// resident value so every caller converges on one artifact set.
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		return el.Value.(*entry[V]).val, false
	}
	l.add(key, v)
	return v, false
}

// Len returns the current number of entries.
func (l *LRU[V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Stats returns a snapshot of the hit/miss/eviction counters.
func (l *LRU[V]) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Hits: l.hits, Misses: l.misses, Evictions: l.evictions, Len: l.order.Len(), Cap: l.max}
}
