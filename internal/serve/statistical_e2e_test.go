package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"relive/internal/core"
	"relive/internal/ltl"
	"relive/internal/serve"
	"relive/internal/store"
	"relive/internal/ts"
)

// The /v1/check/statistical side of the e2e harness: served sampled
// verdicts equal direct core calls (the report is a deterministic
// function of the normalized request, so equality is byte-level),
// replays from the report LRU and the persistent store are
// bit-identical under a fixed seed, explicit-default budgets coalesce
// with unset ones, mid-check cancellation unwinds without leaking
// goroutines, and malformed budgets are rejected at decode time.

// brokenServerText is the paper's Figure 3 variant: reject enters a
// sink loop, so "G F result" fails on almost all random runs and the
// sampler finds a sound counterexample.
const brokenServerText = `init broken
broken request busy
busy result broken
busy reject stuck
stuck no stuck
`

func statFixture(seed int64) serve.StatisticalRequest {
	return serve.StatisticalRequest{
		System: serverText,
		LTL:    "G F result",
		Seed:   seed,
	}
}

// slowStatistical is a statistical request whose sampling sweep runs
// long enough for mid-flight cancellation to land: the budget is at the
// work cap and the walks never settle (2500 visited states cannot close
// a 4000-state bottom SCC), so the full 10M steps are taken.
func slowStatistical(noCache bool, timeoutMS int) serve.StatisticalRequest {
	return serve.StatisticalRequest{
		System:    bigSystemText(4000),
		LTL:       slowLTL,
		Samples:   2000,
		Steps:     5000,
		TimeoutMS: timeoutMS,
		NoCache:   noCache,
	}
}

// TestStatisticalEndpointVerdicts: served sampled verdicts on the
// paper's correct and broken servers are byte-identical to direct core
// checks with the same normalized options, and pin the intended
// holds/fails asymmetry.
func TestStatisticalEndpointVerdicts(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	for _, tc := range []struct {
		name, sysText, verdict string
	}{
		{"correct server", serverText, core.StatVerdictHolds},
		{"broken server", brokenServerText, core.StatVerdictFails},
	} {
		sys, err := ts.ParseString(tc.sysText)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ltl.Parse("G F result")
		if err != nil {
			t.Fatal(err)
		}
		// The handler runs the decoder-normalized request; StatOptions{}
		// defaults to the same budget, and Workers never changes the
		// report.
		want, err := core.CheckStatistical(sys, core.FromFormula(f, nil), core.StatOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		req := serve.StatisticalRequest{System: tc.sysText, LTL: "G F result", Seed: 3}
		status, _, body := postJSON(t, hs.URL+"/v1/check/statistical", req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, status, body)
		}
		wantBytes, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSpace(body), wantBytes) {
			t.Fatalf("%s: served body differs from direct core check\nserved: %s\nlocal:  %s",
				tc.name, body, wantBytes)
		}
		var rep core.StatisticalReport
		decodeInto(t, body, &rep)
		if rep.Verdict != tc.verdict {
			t.Fatalf("%s: verdict %q, want %q", tc.name, rep.Verdict, tc.verdict)
		}
		if !rep.Statistical {
			t.Fatalf("%s: served report not marked statistical", tc.name)
		}
		if tc.verdict == core.StatVerdictFails && len(rep.CounterexampleLoop) == 0 {
			t.Fatalf("%s: fails verdict without a sampled counterexample", tc.name)
		}
	}
}

// TestStatisticalCacheReplaysBitIdentical: under a fixed seed the cold
// body, the report-LRU replay, the respelled structural hit, the
// explicit-default coalescing hit, and the persistent-store replay on a
// fresh server over the same volume are all byte-identical; a different
// seed and no_cache both miss.
func TestStatisticalCacheReplaysBitIdentical(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := serve.New(serve.Config{Store: st1})
	hs1 := httptest.NewServer(s1.Handler())
	defer hs1.Close()

	req := statFixture(7)
	status, hdr, cold := postJSON(t, hs1.URL+"/v1/check/statistical", req)
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("cold: status %d header %q: %s", status, hdr, cold)
	}
	status, hdr, warm := postJSON(t, hs1.URL+"/v1/check/statistical", req)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("report-LRU replay: status %d header %q", status, hdr)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("report-LRU replay differs from cold run:\ncold %s\nwarm %s", cold, warm)
	}

	// Different spelling of the same system and formula: structural keys
	// still hit the same report.
	respelled := req
	respelled.System = "# same system\n" + strings.ReplaceAll(serverText, "\n", "\n\n")
	respelled.LTL = "G (F (result))"
	status, hdr, re := postJSON(t, hs1.URL+"/v1/check/statistical", respelled)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("respelled: status %d header %q (want structural cache hit)", status, hdr)
	}
	if !bytes.Equal(cold, re) {
		t.Fatal("respelled hit differs from cold run")
	}

	// Explicit defaults coalesce with unset fields: the decoder
	// normalizes the budget before the request is keyed.
	explicit := req
	explicit.Samples = 400
	explicit.Steps = 256
	explicit.Confidence = 0.99
	status, hdr, ex := postJSON(t, hs1.URL+"/v1/check/statistical", explicit)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("explicit defaults: status %d header %q (want coalesced hit)", status, hdr)
	}
	if !bytes.Equal(cold, ex) {
		t.Fatal("explicit-default hit differs from cold run")
	}

	// A different seed is a different key and a different sampling run.
	status, hdr, other := postJSON(t, hs1.URL+"/v1/check/statistical", statFixture(8))
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("different seed: status %d header %q, want a cold run", status, hdr)
	}
	var coldRep, otherRep core.StatisticalReport
	decodeInto(t, cold, &coldRep)
	decodeInto(t, other, &otherRep)
	if otherRep.Seed != 8 || coldRep.Seed != 7 {
		t.Fatalf("seeds not carried through: %d, %d", coldRep.Seed, otherRep.Seed)
	}

	status, hdr, _ = postJSON(t, hs1.URL+"/v1/check/statistical",
		serve.StatisticalRequest{System: req.System, LTL: req.LTL, Seed: req.Seed, NoCache: true})
	if status != http.StatusOK || hdr != "miss" {
		t.Fatalf("no_cache: status %d header %q, want fresh miss", status, hdr)
	}

	// A brand-new process over the same volume: empty LRUs, warm store.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := serve.New(serve.Config{Store: st2})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	status, hdr, stored := postJSON(t, hs2.URL+"/v1/check/statistical", req)
	if status != http.StatusOK || hdr != "hit" {
		t.Fatalf("store replay: status %d header %q", status, hdr)
	}
	if !bytes.Equal(cold, stored) {
		t.Fatalf("store replay differs from cold run:\ncold %s\nstore %s", cold, stored)
	}
	if s2.Trace().Counters()["serve.store.report_hits"] < 1 {
		t.Fatal("store hit not counted on the fresh server")
	}
}

// TestStatisticalBadRequests: malformed bodies and out-of-cap budgets
// are rejected at decode time with 400 "bad_request".
func TestStatisticalBadRequests(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{})
	cases := []struct {
		name string
		body string
	}{
		{"no system", `{"ltl":"G F a"}`},
		{"no property", `{"system":"init s\ns a s\n"}`},
		{"both properties", `{"system":"init s\ns a s\n","ltl":"G a","omega":"( a ) ^w"}`},
		{"bad ltl", `{"system":"init s\ns a s\n","ltl":"G ("}`},
		{"negative samples", `{"system":"init s\ns a s\n","ltl":"G a","samples":-1}`},
		{"samples over cap", `{"system":"init s\ns a s\n","ltl":"G a","samples":100001}`},
		{"steps over cap", `{"system":"init s\ns a s\n","ltl":"G a","steps":65537}`},
		{"confidence one", `{"system":"init s\ns a s\n","ltl":"G a","confidence":1}`},
		{"work over cap", `{"system":"init s\ns a s\n","ltl":"G a","samples":100000,"steps":101}`},
		{"unknown field", `{"system":"init s\ns a s\n","ltl":"G a","sample":10}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/check/statistical", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var er serve.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest || er.Kind != "bad_request" {
				t.Fatalf("status %d kind %q, want 400 bad_request", resp.StatusCode, er.Kind)
			}
		})
	}
	if got := s.Trace().Gauges()["serve.inflight"]; got != 0 {
		t.Fatalf("bad requests left %d inflight", got)
	}
}

// TestStatisticalCancelMidFlight: dropping the connection mid-sweep
// cancels the sampling workers cooperatively, and a storm of abandoned
// requests leaks no goroutines.
func TestStatisticalCancelMidFlight(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{Workers: 4, QueueDepth: 200})
	data, _ := json.Marshal(slowStatistical(true, 0))

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/check/statistical", bytes.NewReader(data))
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for s.Trace().Gauges()["serve.inflight"] < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite mid-flight cancel")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Trace().Counters()["serve.cancelled"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("serve.cancelled counter never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitFlightVerdict(t, s, "statistical", "cancelled")

	// Abandoned-request storm: everything unwinds, no goroutine sticks.
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, ccancel := context.WithTimeout(context.Background(), time.Duration(2+i%20)*time.Millisecond)
			defer ccancel()
			r, _ := http.NewRequestWithContext(cctx, http.MethodPost, hs.URL+"/v1/check/statistical", bytes.NewReader(data))
			if resp, err := http.DefaultClient.Do(r); err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+10 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d now=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain after cancelled storm: %v", err)
	}
}

// TestStatisticalMetricsExported: a served statistical check shows up
// in the sampling counters and the per-endpoint latency histogram on
// /metrics.
func TestStatisticalMetricsExported(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{})
	if status, _, body := postJSON(t, hs.URL+"/v1/check/statistical", statFixture(1)); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"relive_mc_samples_total",
		"relive_mc_settled_total",
		"relive_mc_hits_total",
		`relive_serve_request_seconds_bucket{endpoint="statistical"`,
		`relive_check_phase_seconds_bucket{phase="sampling"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics does not contain %q", want)
		}
	}
}
