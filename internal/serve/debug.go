package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// DebugChecksResponse is the body of GET /debug/checks: what the server
// is doing right now and what it just finished, newest first.
type DebugChecksResponse struct {
	Inflight []InflightRecord `json:"inflight"`
	Recent   []CheckRecord    `json:"recent"`
}

// handleDebugChecks lists in-flight checks (with elapsed time) and the
// flight recorder's ring of completed ones.
func (s *Server) handleDebugChecks(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		s.writeError(w, r, http.StatusNotFound, "disabled", fmt.Errorf("flight recorder disabled (flight entries < 0)"))
		return
	}
	resp := DebugChecksResponse{
		Inflight: s.flight.running(time.Now()),
		Recent:   s.flight.recent(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// handleDebugTrace replays the full span tree of a slow check by trace
// ID, in the same JSON form rlcheck -trace-json emits.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("trace")
	dump, ok := s.flight.trace(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, "not_found",
			fmt.Errorf("no retained trace for %q (only checks over the slow threshold keep their span tree)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(dump)
}
