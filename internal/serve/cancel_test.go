package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relive/internal/serve"
)

// The cancellation and load side of the harness: server deadlines map
// to 504, client disconnects cancel the check mid-flight (observed
// through the obs span outcome tags and the serve.cancelled counter),
// a hundred abandoned requests leak no goroutines, the bounded queue
// sheds with 429 + Retry-After, and cache hits beat cold runs by the
// documented margin under 200 concurrent clients.

// slowCheck is a request whose cold check takes ~250ms — long enough
// that millisecond deadlines and client cancels land mid-flight, short
// enough to keep the suite fast.
func slowCheck(noCache bool, timeoutMS int) serve.CheckRequest {
	return serve.CheckRequest{
		System:    bigSystemText(4000),
		LTL:       slowLTL,
		TimeoutMS: timeoutMS,
		NoCache:   noCache,
	}
}

// TestServerDeadline504: a tiny timeout_ms expires mid-check and maps
// to 504 with kind "timeout" — the server's deadline, not the client's.
func TestServerDeadline504(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{})
	status, _, body := postJSON(t, hs.URL+"/v1/check/all", slowCheck(true, 2))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", status, body)
	}
	var er serve.ErrorResponse
	decodeInto(t, body, &er)
	if er.Kind != "timeout" {
		t.Fatalf("kind = %q, want timeout", er.Kind)
	}
	if s.Trace().Counters()["serve.timeout"] < 1 {
		t.Fatal("serve.timeout counter not incremented")
	}
	// The flight recorder must hold the check with verdict "timeout"
	// (the server's deadline, distinguished from a client cancel).
	waitFlightVerdict(t, s, "all", "timeout")
}

// TestClientCancelMidFlight: dropping the connection mid-check cancels
// the pipeline cooperatively; the server records serve.cancelled and
// tags the span.
func TestClientCancelMidFlight(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{})
	data, _ := json.Marshal(slowCheck(true, 0))
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/check/all", bytes.NewReader(data))
	go func() {
		// Cancel only once the check is demonstrably in flight: the
		// serve.inflight gauge flips at admission, right before the
		// serve.all span opens. A fixed sleep is not enough — under
		// -race the body parse is slow and a too-early cancel is
		// swallowed at admission, where no span exists to tag.
		deadline := time.Now().Add(5 * time.Second)
		for s.Trace().Gauges()["serve.inflight"] < 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(5 * time.Millisecond) // let the kernel loops start
		cancel()
	}()
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded despite mid-flight cancel")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled request returned after %v", elapsed)
	}
	// The handler finishes asynchronously after the client is gone; poll
	// for its bookkeeping.
	deadline := time.Now().Add(5 * time.Second)
	for s.Trace().Counters()["serve.cancelled"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("serve.cancelled counter never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitFlightVerdict(t, s, "all", "cancelled")
}

// waitFlightVerdict polls until the flight recorder holds a completed
// check on the endpoint with the given verdict. Spans moved from the
// process-wide trace into per-request traces; the flight ring is where
// per-check outcomes are observable now. Polling covers the gap between
// the response write (inside the handler) and the ring append (in the
// wrapper, after the handler returns).
func waitFlightVerdict(t *testing.T, s *serve.Server, endpoint, verdict string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, rec := range s.FlightRecords() {
			if rec.Endpoint == endpoint && rec.Verdict == verdict {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no flight record for endpoint %q with verdict %q (records: %+v)",
				endpoint, verdict, s.FlightRecords())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelledRequestsLeakNoGoroutines: 100 abandoned requests later,
// the goroutine count settles back — nothing blocks forever on a
// worker slot, a single-flight cell, or a response write. Run under
// -race in CI (make test), this is the leak certification the ISSUE
// asks for.
func TestCancelledRequestsLeakNoGoroutines(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{Workers: 4, QueueDepth: 200})
	data, _ := json.Marshal(slowCheck(true, 0))

	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(2+i%20)*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/check/all", bytes.NewReader(data))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	// All handlers must unwind: inflight drains and the goroutine count
	// returns to (about) the baseline. The slack absorbs http keepalive
	// and runtime background goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+10 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d now=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after cancelled storm: %v", err)
	}
}

// TestQueueSheds429: with one worker and a depth-1 queue, a burst of
// slow checks gets exactly the admission contract — some run, some
// queue, the rest are shed with 429 + Retry-After — and shedding is
// counted.
func TestQueueSheds429(t *testing.T) {
	s, hs := newTestServer(t, serve.Config{Workers: 1, QueueDepth: 1})
	var got [8]int
	var wg sync.WaitGroup
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(slowCheck(true, 300))
			resp, err := http.Post(hs.URL+"/v1/check/all", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			got[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	var shed, served int
	for _, code := range got {
		switch code {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK, http.StatusGatewayTimeout:
			served++ // admitted; 504 when its share of the worker ran out
		default:
			t.Fatalf("unexpected status %d (all: %v)", code, got)
		}
	}
	if shed == 0 {
		t.Fatalf("burst of 8 on capacity 2 shed nothing: %v", got)
	}
	if served == 0 {
		t.Fatalf("nothing served during the burst: %v", got)
	}
	if s.Trace().Counters()["serve.shed"] != int64(shed) {
		t.Fatalf("serve.shed = %d, want %d", s.Trace().Counters()["serve.shed"], shed)
	}
}

// TestServiceLoad is the ISSUE's acceptance scenario: 200 concurrent
// clients against a small pool, cache hits at least 5x faster than the
// cold run, shedding observed when the cache is bypassed, and
// mid-flight cancellation visible in the trace.
func TestServiceLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short")
	}
	// The slow threshold sits well under the ~250ms cold check, so the
	// load's cold runs are slow-marked and retain their span trees.
	s, hs := newTestServer(t, serve.Config{Workers: 2, QueueDepth: 4, SlowThreshold: 50 * time.Millisecond})
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	post := func(body serve.CheckRequest) (int, time.Duration) {
		data, _ := json.Marshal(body)
		start := time.Now()
		resp, err := client.Post(hs.URL+"/v1/check/all", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Errorf("post: %v", err)
			return 0, 0
		}
		defer resp.Body.Close()
		var sink bytes.Buffer
		sink.ReadFrom(resp.Body)
		return resp.StatusCode, time.Since(start)
	}

	// Phase 1: one cold, uncached run for the baseline, then prime the
	// report cache.
	status, coldDur := post(slowCheck(true, 0))
	if status != http.StatusOK {
		t.Fatalf("cold run status %d", status)
	}
	if status, _ := post(slowCheck(false, 0)); status != http.StatusOK {
		t.Fatalf("priming status %d", status)
	}

	// Phase 2: the cache speedup, measured without client contention so
	// the comparison is check-vs-lookup, not scheduler noise. A hit
	// still pays body parsing and the structural hash; the ≥5x floor is
	// far below the observed margin.
	hits := make([]time.Duration, 9)
	for i := range hits {
		code, d := post(slowCheck(false, 0))
		if code != http.StatusOK {
			t.Fatalf("cached run status %d", code)
		}
		hits[i] = d
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })
	median := hits[len(hits)/2]
	if median*5 > coldDur {
		t.Fatalf("cache speedup below 5x: cold %v, cached median %v", coldDur, median)
	}
	t.Logf("cold %v, cached median %v (%.0fx)", coldDur, median, float64(coldDur)/float64(median))

	// Phase 3: 200 concurrent cached clients; every one must be served
	// from the report cache (no slot consumed, no shedding on the cache
	// path) even though the pool only has capacity 6.
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := post(slowCheck(false, 0))
			if code != http.StatusOK {
				t.Errorf("cached client %d: status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	t.Logf("200 concurrent cached clients in %v", time.Since(start))

	// Phase 3: bypass the cache so the burst hits the worker pool; on
	// capacity 6 a 30-request burst must shed.
	var shed atomic.Int64
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := post(slowCheck(true, 200))
			if code == http.StatusTooManyRequests {
				shed.Add(1)
			}
		}()
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatal("uncached burst of 30 on capacity 6 shed nothing")
	}

	// Phase 4: mid-flight cancellations are observable in the trace.
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, _ := json.Marshal(slowCheck(true, 0))
			ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/check/all", bytes.NewReader(data))
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for s.Trace().Counters()["serve.cancelled"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no cancellation observed during load")
		}
		time.Sleep(5 * time.Millisecond)
	}
	c := s.Trace().Counters()
	t.Logf("requests=%d completed=%d shed=%d cancelled=%d report_hits=%d",
		c["serve.requests"], c["serve.completed"], c["serve.shed"], c["serve.cancelled"], c["serve.cache.report_hits"])

	// Phase 5: the observability acceptance. The flight recorder must
	// have witnessed the load — completed checks with non-zero phase
	// timings, a slow-marked check whose span tree replays by trace ID —
	// and /metrics must expose the per-endpoint and per-phase histogram
	// families.
	resp, err := client.Get(hs.URL + "/debug/checks")
	if err != nil {
		t.Fatal(err)
	}
	var dbg serve.DebugChecksResponse
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dbg.Recent) < 100 {
		t.Errorf("/debug/checks lists %d completed checks after ~250 requests, want >= 100", len(dbg.Recent))
	}
	// Pipeline artifacts are single-flight cells, so only the first cold
	// run pays (and records) trim/property/pre; later uncached runs on
	// the same request re-run only the emptiness checks. Any positive
	// phase timing therefore counts.
	var withPhases int
	var slowID string
	for _, rec := range dbg.Recent {
		for _, ns := range rec.PhaseNS {
			if ns > 0 {
				withPhases++
				break
			}
		}
		if slowID == "" && rec.Slow && rec.HasTrace && rec.Verdict == "ok" {
			slowID = rec.TraceID
		}
	}
	if withPhases < 2 {
		t.Errorf("only %d flight records carry non-zero phase timings, want >= 2", withPhases)
	}
	if slowID == "" {
		t.Fatal("no slow-marked completed check retained a span tree")
	}
	resp, err = client.Get(hs.URL + "/debug/checks/" + slowID)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			Name       string `json:"name"`
			DurationNS int64  `json:"duration_ns"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dump.TraceID != slowID || len(dump.Spans) == 0 {
		t.Fatalf("trace replay for %s: trace_id %q, %d spans", slowID, dump.TraceID, len(dump.Spans))
	}

	resp, err = client.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(resp.Body)
	resp.Body.Close()
	metricsText := mbuf.String()
	for _, want := range []string{
		`relive_serve_request_seconds_bucket{endpoint="all",le="`,
		`relive_check_phase_seconds_bucket{phase="trim",kernel="auto",le="`,
		`relive_check_phase_seconds_bucket{phase="emptiness",kernel="auto",le="`,
		`relive_serve_cache_path_seconds_bucket{path="report-hit",le="`,
		`relive_serve_queue_wait_seconds_count`,
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing histogram series %q", want)
		}
	}
}

// TestConcurrentMixedEndpoints drives all endpoints at once (run under
// -race via make test): shared caches, admission, and metrics must be
// data-race free.
func TestConcurrentMixedEndpoints(t *testing.T) {
	_, hs := newTestServer(t, serve.Config{Workers: 4, QueueDepth: 64})
	paths := []string{"/v1/check/all", "/v1/check/liveness", "/v1/check/safety", "/v1/check/satisfies"}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A few distinct systems so caches churn; each formula's
			// atoms exist in its system's alphabet.
			sys, f := serverText, "G F result"
			if i%3 == 1 {
				sys, f = concreteText, "G F ( result | reject )"
			} else if i%3 == 2 {
				sys, f = fmt.Sprintf("init q0\nq0 a q%d\nq%d b q0\n", i%5, i%5), "G F a"
			}
			status, _, body := postJSON(t, hs.URL+paths[i%len(paths)],
				serve.CheckRequest{System: sys, LTL: f, NoCache: i%2 == 0})
			if status != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, status, body)
			}
			if i%8 == 0 {
				http.Get(hs.URL + "/metrics")
			}
		}(i)
	}
	wg.Wait()
}
