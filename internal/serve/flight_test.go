package serve

import (
	"testing"
	"time"

	"relive/internal/obs"
)

func record(id string, durNS int64) CheckRecord {
	return CheckRecord{TraceID: id, Endpoint: "all", Verdict: "ok", DurationNS: durNS}
}

// TestFlightRingEviction: the ring keeps exactly the last N completed
// checks, newest first, no matter how many flow through.
func TestFlightRingEviction(t *testing.T) {
	f := newFlightRecorder(3, 2, time.Hour)
	for i := 0; i < 10; i++ {
		id := string(rune('a' + i))
		f.begin(id, "all", time.Now())
		f.end(record(id, 1), nil)
	}
	recent := f.recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(recent))
	}
	for i, want := range []string{"j", "i", "h"} {
		if recent[i].TraceID != want {
			t.Errorf("recent[%d] = %q, want %q (newest first)", i, recent[i].TraceID, want)
		}
	}
	if got := f.running(time.Now()); len(got) != 0 {
		t.Errorf("%d checks still in flight after all ended", len(got))
	}
}

// TestFlightSlowTraceRetention: only checks over the threshold keep
// their span tree, and the retained set is bounded, oldest evicted.
func TestFlightSlowTraceRetention(t *testing.T) {
	f := newFlightRecorder(10, 2, 100*time.Millisecond)
	mkTrace := func(id string) *obs.Trace {
		tr := obs.NewTrace()
		tr.SetTraceID(id)
		sp := tr.SpanStart("serve.all")
		tr.SpanEnd(sp)
		return tr
	}
	fast := record("fast", int64(time.Millisecond))
	f.end(fast, mkTrace("fast"))
	for _, id := range []string{"slow1", "slow2", "slow3"} {
		f.end(record(id, int64(time.Second)), mkTrace(id))
	}
	if _, ok := f.trace("fast"); ok {
		t.Error("fast check's trace retained despite being under the threshold")
	}
	if _, ok := f.trace("slow1"); ok {
		t.Error("oldest slow trace not evicted past the cap of 2")
	}
	for _, id := range []string{"slow2", "slow3"} {
		d, ok := f.trace(id)
		if !ok {
			t.Fatalf("slow trace %q not retained", id)
		}
		if d.TraceID != id || len(d.Spans) != 1 {
			t.Errorf("retained dump for %q malformed: %+v", id, d)
		}
	}
	recent := f.recent()
	for _, r := range recent {
		wantSlow := r.TraceID != "fast"
		if r.Slow != wantSlow {
			t.Errorf("record %q slow = %v, want %v", r.TraceID, r.Slow, wantSlow)
		}
	}
}

// TestFlightDisabledNilSafe: a nil flight recorder (tracing disabled)
// is a no-op on every path — and allocation-free, so disabling the
// recorder really removes the per-request cost.
func TestFlightDisabledNilSafe(t *testing.T) {
	var f *flightRecorder
	f.begin("x", "all", time.Now())
	f.end(record("x", 1), nil)
	if got := f.recent(); got != nil {
		t.Errorf("nil recorder recent() = %v", got)
	}
	if got := f.running(time.Now()); got != nil {
		t.Errorf("nil recorder running() = %v", got)
	}
	if _, ok := f.trace("x"); ok {
		t.Error("nil recorder returned a trace")
	}
	rec := record("x", 1)
	now := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() {
		f.begin("x", "all", now)
		f.end(rec, nil)
	}); allocs != 0 {
		t.Fatalf("disabled flight recorder allocates %v per check, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if phaseDurations(nil) != nil {
			t.Fatal("phaseDurations(nil) != nil")
		}
	}); allocs != 0 {
		t.Fatalf("phaseDurations(nil) allocates %v, want 0", allocs)
	}
}
