package serve

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"relive/internal/ltl"
	"relive/internal/obs"
	"relive/internal/ts"
)

// Router is rlserve's shard-routing mode: a stateless front end that
// spreads check requests over a set of rlserve backends by the
// structural hash of the request's system, so each backend's pipeline
// and report caches stay hot for its shard of the keyspace. Placement
// is a consistent-hash ring (virtual nodes) with the bounded-load
// variant: a backend already carrying more than LoadFactor times its
// fair share of in-flight proxies is skipped for the next ring
// candidate, so one expensive system cannot queue the world behind it.
//
// The router also coalesces: concurrent requests with the same report
// key (the exact key the backends cache reports under) collapse into
// one proxied check whose answer every waiter shares. The leader's
// proxy runs on a detached context so one impatient client cannot
// cancel the check for the others; only when the last waiter leaves is
// the in-flight proxy abandoned. Error answers are shared with the
// waiters of the moment but never cached, so a transient failure is
// retryable immediately.
//
// Answers are bit-identical to single-node rlserve: the router never
// rewrites a backend response body, and its request keys are computed
// by the same parse → canonicalize → hash functions the backends use,
// so router-level coalescing can only merge requests a single backend
// would have merged in its report cache anyway.

// RouterConfig tunes a Router. Backends is required; everything else
// has a serving-appropriate default.
type RouterConfig struct {
	// Backends are the rlserve base URLs ("http://host:port") to route
	// over. At least one is required.
	Backends []string
	// VNodes is the number of ring points per backend; more points give
	// a smoother key split. <= 0 means 128.
	VNodes int
	// LoadFactor is the bounded-load c: a backend is skipped while its
	// in-flight proxies exceed ceil(c * (total+1) / healthy). <= 1
	// means 1.25.
	LoadFactor float64
	// HealthInterval is the period of the background /healthz probe;
	// <= 0 means 2s. HealthTimeout bounds one probe; <= 0 means 1s.
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// ProxyTimeout bounds a proxied check that did not ask for its own
	// timeout_ms; <= 0 means 90s (above the backends' 60s default, so
	// the backend's own timeout verdict arrives first).
	ProxyTimeout time.Duration
	// Client overrides the HTTP client used for proxying and probing;
	// nil means a pooled default.
	Client *http.Client
	// Logger receives router lifecycle events (backend health flips);
	// nil disables logging.
	Logger *slog.Logger
}

// routeBackend is one backend's routing state: health (flipped by
// probes and connection errors), in-flight proxies (the bounded-load
// signal), and per-backend counters for /metrics.
type routeBackend struct {
	url      string
	healthy  atomic.Bool
	inflight atomic.Int64
	proxied  atomic.Int64
	errs     atomic.Int64
	latency  *obs.Histogram

	mu      sync.Mutex
	lastErr string
}

func (b *routeBackend) noteError(err error) {
	b.errs.Add(1)
	b.mu.Lock()
	b.lastErr = err.Error()
	b.mu.Unlock()
	b.healthy.Store(false)
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	h uint64
	b *routeBackend
}

// flightCell is one coalesced in-flight proxy: the leader publishes
// its result and closes done; followers wait on done, and the last
// waiter to leave cancels the detached proxy context.
type flightCell struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	res     *proxyResult
	err     error
}

// proxyResult is the slice of a backend response the router replays to
// every waiter: status, body, and the headers that carry meaning
// across the proxy.
type proxyResult struct {
	status      int
	body        []byte
	contentType string
	cache       string // X-Relive-Cache from the backend
	retryAfter  string
	backend     string
}

// Router routes check requests over a set of rlserve backends. Create
// with NewRouter, mount Handler, and Close on shutdown.
type Router struct {
	cfg      RouterConfig
	client   *http.Client
	backends []*routeBackend
	points   []ringPoint
	mux      *http.ServeMux
	log      *slog.Logger

	mu     sync.Mutex
	flight map[string]*flightCell

	requests    atomic.Int64
	coalesced   atomic.Int64
	failovers   atomic.Int64
	badRequests atomic.Int64
	unavailable atomic.Int64

	stop    chan struct{}
	stopped sync.Once
	probing sync.WaitGroup
}

// CoalescedHeader marks a response that was shared from another
// request's in-flight proxy rather than proxied for this request.
const CoalescedHeader = "X-Relive-Coalesced"

// BackendHeader names the backend whose response this is.
const BackendHeader = "X-Relive-Backend"

// NewRouter builds a router over the given backends and starts its
// health prober.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend is required")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 128
	}
	if cfg.LoadFactor <= 1 {
		cfg.LoadFactor = 1.25
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 90 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	rt := &Router{
		cfg:    cfg,
		client: client,
		log:    cfg.Logger,
		flight: make(map[string]*flightCell),
		stop:   make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		url := strings.TrimRight(strings.TrimSpace(raw), "/")
		if url == "" || seen[url] {
			continue
		}
		seen[url] = true
		b := &routeBackend{url: url, latency: &obs.Histogram{}}
		b.healthy.Store(true) // optimistic: serve before the first probe lands
		rt.backends = append(rt.backends, b)
	}
	if len(rt.backends) == 0 {
		return nil, errors.New("router: no usable backend URLs")
	}
	rt.points = make([]ringPoint, 0, len(rt.backends)*cfg.VNodes)
	for _, b := range rt.backends {
		for v := 0; v < cfg.VNodes; v++ {
			rt.points = append(rt.points, ringPoint{h: pointHash(fmt.Sprintf("%s|%d", b.url, v)), b: b})
		}
	}
	sort.Slice(rt.points, func(i, j int) bool { return rt.points[i].h < rt.points[j].h })

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/check/{endpoint}", rt.handleCheck)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)

	rt.probing.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health prober. In-flight proxies finish on their own
// contexts.
func (rt *Router) Close() {
	rt.stopped.Do(func() { close(rt.stop) })
	rt.probing.Wait()
}

// pointHash maps a string to a position on the ring.
func pointHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// pick returns the backends to try for a key, in order: healthy
// backends under the bounded-load cap in ring order from the key's
// point, then healthy-but-loaded ones, then unhealthy ones as a last
// resort (the probe may simply not have noticed a recovery yet).
func (rt *Router) pick(key string) []*routeBackend {
	h := pointHash(key)
	i := sort.Search(len(rt.points), func(j int) bool { return rt.points[j].h >= h })
	ringOrder := make([]*routeBackend, 0, len(rt.backends))
	seen := make(map[*routeBackend]bool, len(rt.backends))
	for n := 0; n < len(rt.points) && len(ringOrder) < len(rt.backends); n++ {
		b := rt.points[(i+n)%len(rt.points)].b
		if !seen[b] {
			seen[b] = true
			ringOrder = append(ringOrder, b)
		}
	}

	var total, healthy int64
	for _, b := range rt.backends {
		total += b.inflight.Load()
		if b.healthy.Load() {
			healthy++
		}
	}
	if healthy == 0 {
		return ringOrder
	}
	// Bounded load: capacity = ceil(c * (total+1) / healthy).
	capacity := int64(rt.cfg.LoadFactor*float64(total+1)/float64(healthy)) + 1

	var under, over, down []*routeBackend
	for _, b := range ringOrder {
		switch {
		case !b.healthy.Load():
			down = append(down, b)
		case b.inflight.Load()+1 <= capacity:
			under = append(under, b)
		default:
			over = append(over, b)
		}
	}
	return append(append(under, over...), down...)
}

// routeKey is what the router needs to place and coalesce one request:
// the report key (coalescing identity — exactly the backends' report
// cache key), the system key (placement — keeps a system's artifact
// cells on one backend), and the request's own timeout/no_cache flags.
type routeKey struct {
	rkey      string
	sysKey    string
	timeoutMS int
	noCache   bool
}

var errUnknownEndpoint = errors.New("unknown check endpoint")

// routeKeyFor computes a request's keys with the same parse →
// canonicalize → hash pipeline the backends use, so router coalescing
// merges exactly the requests a backend's report cache would. It
// rejects only what every backend would reject the same way (body
// shape, system text, LTL syntax); alphabet-dependent validation
// (ω-regexes, homomorphisms) is left to the routed backend, whose 400
// is proxied back verbatim.
func routeKeyFor(endpoint string, body []byte) (routeKey, error) {
	switch endpoint {
	case "all", "liveness", "safety", "satisfies":
		req, err := DecodeCheckRequest(body)
		if err != nil {
			return routeKey{}, err
		}
		sysKey, err := systemKey(req.System)
		if err != nil {
			return routeKey{}, err
		}
		part, err := propertyKeyPart(req.LTL, req.Omega)
		if err != nil {
			return routeKey{}, err
		}
		return routeKey{
			rkey:      reportKey(endpoint, sysKey, part),
			sysKey:    sysKey,
			timeoutMS: req.TimeoutMS,
			noCache:   req.NoCache,
		}, nil
	case "portfolio":
		req, err := DecodePortfolioRequest(body)
		if err != nil {
			return routeKey{}, err
		}
		sysKey, err := systemKey(req.System)
		if err != nil {
			return routeKey{}, err
		}
		keyParts := []string{"portfolio", sysKey}
		for _, t := range req.LTLs {
			part, perr := propertyKeyPart(t, "")
			if perr != nil {
				return routeKey{}, perr
			}
			keyParts = append(keyParts, part)
		}
		for _, t := range req.Omegas {
			keyParts = append(keyParts, "omega\x00"+t)
		}
		return routeKey{
			rkey:      hashKey(keyParts...),
			sysKey:    sysKey,
			timeoutMS: req.TimeoutMS,
			noCache:   req.NoCache,
		}, nil
	case "abstraction":
		req, err := DecodeAbstractionRequest(body)
		if err != nil {
			return routeKey{}, err
		}
		sysKey, err := systemKey(req.System)
		if err != nil {
			return routeKey{}, err
		}
		eta, err := ltl.Parse(req.Eta)
		if err != nil {
			return routeKey{}, err
		}
		return routeKey{
			rkey:      hashKey("abstraction", sysKey, req.Hom, eta.String()),
			sysKey:    sysKey,
			timeoutMS: req.TimeoutMS,
			noCache:   req.NoCache,
		}, nil
	case "fair-abstract":
		req, err := DecodeFairAbstractRequest(body)
		if err != nil {
			return routeKey{}, err
		}
		sysKey, err := systemKey(req.System)
		if err != nil {
			return routeKey{}, err
		}
		eta, err := ltl.Parse(req.Eta)
		if err != nil {
			return routeKey{}, err
		}
		return routeKey{
			rkey:      hashKey("fair-abstract", sysKey, req.Hom, req.Fairness, eta.String()),
			sysKey:    sysKey,
			timeoutMS: req.TimeoutMS,
			noCache:   req.NoCache,
		}, nil
	case "statistical":
		// DecodeStatisticalRequest normalizes seed/budget/confidence
		// defaults, and statisticalKey is the very function the backend
		// keys its report cache with, so router coalescing merges exactly
		// the requests a backend would.
		req, err := DecodeStatisticalRequest(body)
		if err != nil {
			return routeKey{}, err
		}
		sysKey, err := systemKey(req.System)
		if err != nil {
			return routeKey{}, err
		}
		part, err := propertyKeyPart(req.LTL, req.Omega)
		if err != nil {
			return routeKey{}, err
		}
		return routeKey{
			rkey:      statisticalKey(sysKey, part, req),
			sysKey:    sysKey,
			timeoutMS: req.TimeoutMS,
			noCache:   req.NoCache,
		}, nil
	}
	return routeKey{}, errUnknownEndpoint
}

// systemKey parses and canonicalizes a system text into the same
// structural key resolveSystem computes.
func systemKey(text string) (string, error) {
	sys, err := ts.ParseString(text)
	if err != nil {
		return "", err
	}
	return hashKey("sys", sys.FormatString()), nil
}

// propertyKeyPart mirrors resolveProperty's key computation without a
// system alphabet: LTL is canonicalized through its parse tree,
// ω-regexes are keyed by raw text (exactly as the backends key them).
func propertyKeyPart(ltlText, omegaText string) (string, error) {
	if ltlText != "" {
		f, err := ltl.Parse(ltlText)
		if err != nil {
			return "", err
		}
		return "ltl\x00" + f.String(), nil
	}
	return "omega\x00" + omegaText, nil
}

// handleCheck places, coalesces, and proxies one check request.
func (rt *Router) handleCheck(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	body, err := readBody(w, r)
	if err != nil {
		rt.badRequests.Add(1)
		rt.writeError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	endpoint := r.PathValue("endpoint")
	rk, err := routeKeyFor(endpoint, body)
	if err != nil {
		if errors.Is(err, errUnknownEndpoint) {
			http.NotFound(w, r)
			return
		}
		rt.badRequests.Add(1)
		rt.writeError(w, http.StatusBadRequest, "bad_request", err)
		return
	}

	timeout := rt.cfg.ProxyTimeout
	if rk.timeoutMS > 0 {
		// The backend enforces the request's own timeout; the proxy
		// deadline only backstops a hung connection.
		timeout = time.Duration(rk.timeoutMS)*time.Millisecond + 15*time.Second
	}
	traceparent := r.Header.Get("traceparent")
	run := func(ctx context.Context) (*proxyResult, error) {
		return rt.proxy(ctx, endpoint, rk.sysKey, body, traceparent)
	}

	var res *proxyResult
	var shared bool
	if rk.noCache {
		// no_cache requests exist to measure the cold path; coalescing
		// them would hand one client another's answer.
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		res, err = run(ctx)
		cancel()
	} else {
		res, shared, err = rt.coalesce(rk.rkey, r.Context(), timeout, run)
		if shared {
			rt.coalesced.Add(1)
		}
	}
	switch {
	case err == nil:
	case r.Context().Err() != nil:
		rt.writeError(w, statusClientClosed, "cancelled", r.Context().Err())
		return
	default:
		rt.unavailable.Add(1)
		rt.writeError(w, http.StatusServiceUnavailable, "unavailable", err)
		return
	}

	h := w.Header()
	if res.contentType != "" {
		h.Set("Content-Type", res.contentType)
	}
	if res.cache != "" {
		h.Set(CacheHeader, res.cache)
	}
	if res.retryAfter != "" {
		h.Set("Retry-After", res.retryAfter)
	}
	h.Set(BackendHeader, res.backend)
	if shared {
		h.Set(CoalescedHeader, "1")
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// coalesce runs fn once per key across concurrent callers. The leader
// runs fn on a detached context bounded by timeout; every caller waits
// for the shared result or its own client's departure, and the last
// departing waiter cancels the detached run. The cell is removed when
// fn returns, so errors are never sticky. shared reports whether this
// caller joined an existing cell.
func (rt *Router) coalesce(key string, clientCtx context.Context, timeout time.Duration, fn func(context.Context) (*proxyResult, error)) (res *proxyResult, shared bool, err error) {
	rt.mu.Lock()
	if c, ok := rt.flight[key]; ok {
		c.waiters++
		rt.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, c.err
		case <-clientCtx.Done():
			rt.leave(key, c)
			return nil, true, clientCtx.Err()
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	c := &flightCell{done: make(chan struct{}), cancel: cancel, waiters: 1}
	rt.flight[key] = c
	rt.mu.Unlock()

	go func() {
		r, e := fn(ctx)
		rt.mu.Lock()
		delete(rt.flight, key)
		c.res, c.err = r, e
		close(c.done)
		rt.mu.Unlock()
		cancel()
	}()

	select {
	case <-c.done:
		return c.res, false, c.err
	case <-clientCtx.Done():
		rt.leave(key, c)
		return nil, false, clientCtx.Err()
	}
}

// leave drops one waiter from a cell; the last waiter out cancels the
// in-flight proxy (nobody is left to want its answer).
func (rt *Router) leave(key string, c *flightCell) {
	rt.mu.Lock()
	c.waiters--
	abandoned := c.waiters == 0 && rt.flight[key] == c
	rt.mu.Unlock()
	if abandoned {
		c.cancel()
	}
}

// proxy tries the key's backends in pick order until one yields an
// answer. Connection errors mark the backend unhealthy and fail over;
// 429 (shedding) and 503 (draining) fail over without a health flip —
// the prober decides. Every other status, including the backend's own
// 4xx/5xx verdicts, is the answer.
func (rt *Router) proxy(ctx context.Context, endpoint, sysKey string, body []byte, traceparent string) (*proxyResult, error) {
	var lastErr error
	for i, b := range rt.pick(sysKey) {
		if i > 0 {
			rt.failovers.Add(1)
		}
		res, err := rt.tryBackend(ctx, b, endpoint, body, traceparent)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			b.noteError(err)
			if rt.log != nil {
				rt.log.Warn("backend failed", "backend", b.url, "err", err)
			}
			lastErr = err
			continue
		}
		if res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable {
			lastErr = fmt.Errorf("%s: status %d", b.url, res.status)
			continue
		}
		return res, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no backend available")
	}
	return nil, lastErr
}

// tryBackend proxies one request to one backend.
func (rt *Router) tryBackend(ctx context.Context, b *routeBackend, endpoint string, body []byte, traceparent string) (*proxyResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/check/"+endpoint, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	b.inflight.Add(1)
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		b.inflight.Add(-1)
		return nil, err
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes+1))
	resp.Body.Close()
	b.latency.Observe(time.Since(start).Nanoseconds())
	b.inflight.Add(-1)
	if err != nil {
		return nil, err
	}
	b.proxied.Add(1)
	return &proxyResult{
		status:      resp.StatusCode,
		body:        respBody,
		contentType: resp.Header.Get("Content-Type"),
		cache:       resp.Header.Get(CacheHeader),
		retryAfter:  resp.Header.Get("Retry-After"),
		backend:     b.url,
	}, nil
}

// probeLoop polls every backend's /healthz on HealthInterval. A 200
// marks the backend healthy (recovering it after connection errors); a
// 503 (draining) or any failure marks it unhealthy.
func (rt *Router) probeLoop() {
	defer rt.probing.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		rt.probeAll()
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *routeBackend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				b.noteError(err)
				return
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				was := b.healthy.Swap(true)
				if !was && rt.log != nil {
					rt.log.Info("backend recovered", "backend", b.url)
				}
			} else {
				b.noteError(fmt.Errorf("healthz status %d", resp.StatusCode))
			}
		}(b)
	}
	wg.Wait()
}

// RouterBackendHealth is one backend's entry in the router's /healthz.
type RouterBackendHealth struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Inflight  int64  `json:"inflight"`
	Proxied   int64  `json:"proxied"`
	LastError string `json:"last_error,omitempty"`
}

// RouterHealthResponse is the body of the router's /healthz: "ok"
// while at least one backend is healthy, "degraded" otherwise.
type RouterHealthResponse struct {
	Status    string                `json:"status"`
	Version   string                `json:"version"`
	GoVersion string                `json:"go_version"`
	Backends  []RouterBackendHealth `json:"backends"`
}

// Backends returns a snapshot of every backend's routing state.
func (rt *Router) Backends() []RouterBackendHealth {
	out := make([]RouterBackendHealth, len(rt.backends))
	for i, b := range rt.backends {
		b.mu.Lock()
		lastErr := b.lastErr
		b.mu.Unlock()
		out[i] = RouterBackendHealth{
			URL:       b.url,
			Healthy:   b.healthy.Load(),
			Inflight:  b.inflight.Load(),
			Proxied:   b.proxied.Load(),
			LastError: lastErr,
		}
	}
	return out
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	build := Build()
	resp := RouterHealthResponse{
		Status:    "degraded",
		Version:   build.Version,
		GoVersion: build.GoVersion,
		Backends:  rt.Backends(),
	}
	status := http.StatusServiceUnavailable
	for _, b := range resp.Backends {
		if b.Healthy {
			resp.Status = "ok"
			status = http.StatusOK
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	counter := func(name string, v int64) {
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	counter("relive_route_requests_total", rt.requests.Load())
	counter("relive_route_coalesced_total", rt.coalesced.Load())
	counter("relive_route_failover_total", rt.failovers.Load())
	counter("relive_route_bad_request_total", rt.badRequests.Load())
	counter("relive_route_unavailable_total", rt.unavailable.Load())

	fmt.Fprintf(&b, "# TYPE relive_route_proxied_total counter\n")
	for _, bk := range rt.backends {
		fmt.Fprintf(&b, "relive_route_proxied_total{backend=%q} %d\n", bk.url, bk.proxied.Load())
	}
	fmt.Fprintf(&b, "# TYPE relive_route_backend_errors_total counter\n")
	for _, bk := range rt.backends {
		fmt.Fprintf(&b, "relive_route_backend_errors_total{backend=%q} %d\n", bk.url, bk.errs.Load())
	}
	fmt.Fprintf(&b, "# TYPE relive_route_backend_healthy gauge\n")
	for _, bk := range rt.backends {
		healthy := 0
		if bk.healthy.Load() {
			healthy = 1
		}
		fmt.Fprintf(&b, "relive_route_backend_healthy{backend=%q} %d\n", bk.url, healthy)
	}
	fmt.Fprintf(&b, "# TYPE relive_route_backend_inflight gauge\n")
	for _, bk := range rt.backends {
		fmt.Fprintf(&b, "relive_route_backend_inflight{backend=%q} %d\n", bk.url, bk.inflight.Load())
	}
	fmt.Fprintf(&b, "# TYPE relive_route_backend_seconds histogram\n")
	for _, bk := range rt.backends {
		writeHistogramSeries(&b, "relive_route_backend_seconds", fmt.Sprintf("backend=%q", bk.url), bk.latency.Snapshot())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func (rt *Router) writeError(w http.ResponseWriter, status int, kind string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), Kind: kind})
}
