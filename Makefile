GO ?= go

.PHONY: all build test vet bench experiments examples cover clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Reproduce every figure and claim of the paper (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/rlbench

experiments-md:
	$(GO) run ./cmd/rlbench -md

examples:
	@for e in quickstart abstraction fairimpl featureinteraction \
	          compositional montecarlo philosophers; do \
		echo "== examples/$$e"; $(GO) run ./examples/$$e || exit 1; \
	done

cover:
	$(GO) test ./internal/... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
