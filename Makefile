GO ?= go

.PHONY: all build test vet bench bench-save bench-cmp experiments examples cover clean \
        test-oracle fuzz

# Flags shared by bench and bench-save so saved baselines stay comparable.
# BENCHCOUNT=3 matches the methodology recorded in the BENCH_*.json
# files: scripts/benchcmp keeps the per-benchmark minimum ns/op across
# the repeats, which damps scheduler noise on shared runners. Use
# BENCHCOUNT=1 for a quick look.
BENCHCOUNT ?= 3
BENCHFLAGS ?= -run='^$$' -bench=. -benchmem -benchtime=200ms -count=$(BENCHCOUNT)

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

bench:
	$(GO) test $(BENCHFLAGS) .

# The differential & metamorphic suite: internal/core cross-checked
# against the naive paper-literal oracles (docs/TESTING.md). SEED and
# PAIRS feed the suite's own flags; add ORACLEFLAGS=-quickchecks for the
# 4x sweep with larger shapes.
SEED ?= 1
PAIRS ?= 520
ORACLEFLAGS ?=
test-oracle:
	$(GO) test ./internal/oracle -v -run 'Differential|Law' \
		-args -seed $(SEED) -pairs $(PAIRS) $(ORACLEFLAGS)

# Short-budget native fuzzing of every target (seed corpora are in
# testdata/fuzz/). Go runs one -fuzz pattern at a time, so loop.
FUZZTIME ?= 10s
FUZZTARGETS ?= FuzzParseLTL FuzzParseSystem FuzzParseHom FuzzCheckAll FuzzCheckFairAbstract FuzzCheckStatistical FuzzRbarPreservation FuzzServeRequest FuzzAntichainInclusion
fuzz:
	@for t in $(FUZZTARGETS); do \
		echo "== $$t"; \
		$(GO) test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) . || exit 1; \
	done

# Save a benchmark baseline to compare against after a change:
#   make bench-save OUT=bench_before.txt
#   ...edit...
#   make bench-save OUT=bench_after.txt
#   make bench-cmp BEFORE=bench_before.txt AFTER=bench_after.txt
OUT ?= bench_baseline.txt
bench-save:
	$(GO) test $(BENCHFLAGS) . | tee $(OUT)

# THRESHOLD, when set, makes the comparison fail (exit 1) if any
# benchmark regresses below it, e.g. make bench-cmp THRESHOLD=0.90.
# JSON=1 emits the comparison as one JSON object (per-benchmark ratios,
# geomean, worst, gate verdict) instead of the table; the exit status
# gates identically.
BEFORE ?= bench_before.txt
AFTER  ?= bench_after.txt
THRESHOLD ?=
JSON ?=
bench-cmp:
	./scripts/benchcmp $(if $(JSON),-json) $(if $(THRESHOLD),-threshold $(THRESHOLD)) $(BEFORE) $(AFTER)

# Reproduce every figure and claim of the paper (EXPERIMENTS.md source).
experiments:
	$(GO) run ./cmd/rlbench

experiments-md:
	$(GO) run ./cmd/rlbench -md

examples:
	@for e in quickstart abstraction fairimpl featureinteraction \
	          compositional montecarlo philosophers; do \
		echo "== examples/$$e"; $(GO) run ./examples/$$e || exit 1; \
	done

cover:
	$(GO) test ./internal/... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
