package relive

import (
	"context"
	"io"
	"runtime"
	"time"

	"relive/internal/core"
	"relive/internal/kernel"
	"relive/internal/ltl"
	"relive/internal/obs"
)

// Observability re-exports. A Recorder receives spans (nested phase
// timers), counters, and gauges from every decision procedure; Trace is
// the in-memory implementation whose dump powers the CLIs' -stats and
// -trace-json flags. See docs/OBSERVABILITY.md for the span naming
// convention (operations are "<package>.<Op>", lemma/theorem steps use
// the paper's notation and carry a "paper" tag).
type (
	// Recorder receives spans, counters, and gauges; nil means off and
	// costs one nil check per instrumentation point.
	Recorder = obs.Recorder
	// Trace is the in-memory Recorder; safe for concurrent use.
	Trace = obs.Trace
	// TraceDump is the serializable snapshot of a Trace.
	TraceDump = obs.Dump
	// SpanRecord is one recorded phase with duration, automaton sizes,
	// and paper tags.
	SpanRecord = obs.SpanRecord
)

// NewTrace returns an empty in-memory trace recorder.
func NewTrace() *Trace { return obs.NewTrace() }

// ReadTraceJSON parses a dump written by (*Trace).WriteJSON.
func ReadTraceJSON(r io.Reader) (TraceDump, error) { return obs.ReadJSON(r) }

// KernelKind selects which decision-procedure kernel the inclusion and
// universality checks inside a Checker run on; see WithKernel.
type KernelKind = kernel.Kind

// The kernel choices. KernelAuto picks per call site by input size and
// is the default; KernelSubset forces the classic eagerly-materialized
// routes; KernelAntichain forces the antichain/lazy routes. Verdicts
// and witnesses are identical across kernels — only the work to reach
// them differs.
const (
	KernelAuto      = kernel.Auto
	KernelSubset    = kernel.Subset
	KernelAntichain = kernel.Antichain
)

// Checker runs the decision procedures with options attached — a
// Recorder, a parallelism degree, and a kernel choice; the zero value
// (or With() with no options) behaves exactly like the package-level
// functions.
type Checker struct {
	rec       Recorder
	par       int
	kern      kernel.Kind
	kernSet   bool
	simCap    int
	simCapSet bool

	// Statistical engine options (see statistical.go).
	statSeed    int64
	statSamples int
	statSteps   int
	statConf    float64
	fbStates    int
	fbTimeout   time.Duration
	fbSet       bool
}

// Option configures a Checker.
type Option func(*Checker)

// WithRecorder attaches a recorder so every phase of every check run
// through the returned Checker reports spans and metrics to it.
func WithRecorder(rec Recorder) Option {
	return func(c *Checker) { c.rec = rec }
}

// WithParallelism makes the Checker run its decision procedures on up
// to n goroutines: CheckAll/CheckAllProperty run the three Section 4
// verdicts concurrently over one single-flight artifact pipeline, and
// the portfolio entry points use n as their worker-pool size. n <= 0
// means runtime.GOMAXPROCS(0). Verdicts and witnesses are identical to
// the serial path — every artifact is deterministic and built exactly
// once regardless of goroutine arrival order; see docs/PERFORMANCE.md
// ("Parallelism"). Without this option checks stay serial.
func WithParallelism(n int) Option {
	return func(c *Checker) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		c.par = n
	}
}

// WithKernel scopes a kernel choice to the returned Checker: every
// inclusion, universality, and pre(L∩P) construction run through it
// uses the chosen kernel, overriding the process-wide default set by
// the CLIs' -kernel flag. KernelSubset is the escape hatch for
// bisecting a suspected antichain-kernel fault; verdicts and witnesses
// are identical either way (the antichain kernels are differ-checked
// against the subset routes, see docs/PERFORMANCE.md).
func WithKernel(k KernelKind) Option {
	return func(c *Checker) {
		c.kern = k
		c.kernSet = true
	}
}

// WithSimulationCap scopes the antichain kernels' simulation-seeding
// cap to the returned Checker: the maximum simulation-pair space
// (|b|² + |a|·|b| for an inclusion a ⊆ b) the kernels may spend
// computing the simulation preorder that widens antichain subsumption.
// Inputs over the cap — and every input when n is 0 — skip the preorder
// and prune by plain ⊆ alone. Verdicts and witnesses are identical at
// any cap (the preorder only removes redundant work, never answers);
// the cap trades seeding cost against search pruning. The process-wide
// default is kernel.DefaultSimulationCap (see the CLIs' -sim-cap flag).
func WithSimulationCap(n int) Option {
	return func(c *Checker) {
		if n < 0 {
			n = 0
		}
		c.simCap = n
		c.simCapSet = true
	}
}

// With returns a Checker carrying the given options. Existing
// package-level entry points are unchanged; this is the additive way to
// attach observability:
//
//	tr := relive.NewTrace()
//	res, err := relive.With(relive.WithRecorder(tr)).CheckRelativeLiveness(sys, f)
//	tr.WriteTree(os.Stderr)
func With(opts ...Option) *Checker {
	c := &Checker{}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Recorder returns the attached recorder (nil when none).
func (c *Checker) Recorder() Recorder { return c.rec }

// Parallelism returns the configured parallelism degree (0 = serial).
func (c *Checker) Parallelism() int { return c.par }

// kernelCtx returns ctx carrying the Checker's kernel and
// simulation-cap overrides, or ctx unchanged when neither option was
// given (so checks fall back to the process-wide defaults). A nil ctx
// with an override becomes a background context; without one it stays
// nil (the uncancellable serial path).
func (c *Checker) kernelCtx(ctx context.Context) context.Context {
	if c.kernSet {
		ctx = kernel.NewContext(ctx, c.kern)
	}
	if c.simCapSet {
		ctx = kernel.WithSimulationCap(ctx, c.simCap)
	}
	return ctx
}

// CheckRelativeLiveness is the package-level CheckRelativeLiveness with
// the Checker's options applied.
func (c *Checker) CheckRelativeLiveness(sys *System, f *Formula) (LivenessResult, error) {
	return c.CheckRelativeLivenessProperty(sys, core.FromFormula(f, nil))
}

// CheckRelativeLivenessProperty is CheckRelativeLiveness for a Property.
func (c *Checker) CheckRelativeLivenessProperty(sys *System, p Property) (LivenessResult, error) {
	if c.kernSet || c.simCapSet {
		return core.RelativeLivenessCtx(c.kernelCtx(nil), c.rec, sys, p)
	}
	return core.RelativeLivenessRec(c.rec, sys, p)
}

// CheckRelativeSafety is the package-level CheckRelativeSafety with the
// Checker's options applied.
func (c *Checker) CheckRelativeSafety(sys *System, f *Formula) (SafetyResult, error) {
	return c.CheckRelativeSafetyProperty(sys, core.FromFormula(f, nil))
}

// CheckRelativeSafetyProperty is CheckRelativeSafety for a Property.
func (c *Checker) CheckRelativeSafetyProperty(sys *System, p Property) (SafetyResult, error) {
	if c.kernSet || c.simCapSet {
		return core.RelativeSafetyCtx(c.kernelCtx(nil), c.rec, sys, p)
	}
	return core.RelativeSafetyRec(c.rec, sys, p)
}

// CheckSatisfies is the package-level CheckSatisfies with the Checker's
// options applied.
func (c *Checker) CheckSatisfies(sys *System, f *Formula) (SatisfactionResult, error) {
	return c.CheckSatisfiesProperty(sys, core.FromFormula(f, nil))
}

// CheckSatisfiesProperty is CheckSatisfies for a Property.
func (c *Checker) CheckSatisfiesProperty(sys *System, p Property) (SatisfactionResult, error) {
	if c.kernSet || c.simCapSet {
		return core.SatisfiesCtx(c.kernelCtx(nil), c.rec, sys, p)
	}
	return core.SatisfiesRec(c.rec, sys, p)
}

// CheckAll is the package-level CheckAll with the Checker's options
// applied. Under WithParallelism the three verdicts run concurrently;
// the report is identical to the serial one.
func (c *Checker) CheckAll(sys *System, f *Formula) (*Report, error) {
	return c.CheckAllProperty(sys, core.FromFormula(f, nil))
}

// CheckAllProperty is CheckAll for a Property.
func (c *Checker) CheckAllProperty(sys *System, p Property) (*Report, error) {
	if c.kernSet || c.simCapSet {
		return core.CheckAllCtx(c.kernelCtx(nil), c.rec, sys, p, c.par)
	}
	return core.CheckAllParRec(c.rec, sys, p, c.par)
}

// CheckPropertyPortfolio runs CheckAll for every property against sys
// on a worker pool of the Checker's parallelism degree (serial without
// WithParallelism). All properties share the trimmed system and its
// behavior automaton, built once by whichever worker needs them first;
// reports come back in props order with verdicts and witnesses
// identical to checking each property serially.
func (c *Checker) CheckPropertyPortfolio(sys *System, props []Property) ([]*Report, error) {
	if c.kernSet || c.simCapSet {
		return core.CheckPortfolioCtx(c.kernelCtx(nil), c.rec, sys, props, c.portfolioWorkers())
	}
	return core.CheckPortfolioRec(c.rec, sys, props, c.portfolioWorkers())
}

// CheckSystemsPortfolio runs CheckAll for one property against every
// system on a worker pool of the Checker's parallelism degree. Systems
// sharing an alphabet share the property automaton and its negation.
// Reports come back in systems order, identical to the serial results.
func (c *Checker) CheckSystemsPortfolio(systems []*System, p Property) ([]*Report, error) {
	if c.kernSet || c.simCapSet {
		return core.CheckSystemsPortfolioCtx(c.kernelCtx(nil), c.rec, systems, p, c.portfolioWorkers())
	}
	return core.CheckSystemsPortfolioRec(c.rec, systems, p, c.portfolioWorkers())
}

// portfolioWorkers maps the option to the pool size: without
// WithParallelism the portfolio runs serially (core treats <= 1 as a
// plain loop); core.CheckPortfolioRec treats 0 as one-per-job, which is
// not what an unconfigured Checker should do.
func (c *Checker) portfolioWorkers() int {
	if c.par <= 0 {
		return 1
	}
	return c.par
}

// MachineClosed is the package-level MachineClosed with the Checker's
// options applied.
func (c *Checker) MachineClosed(lomega, lambda *Buchi) (MachineClosureResult, error) {
	return core.MachineClosedRec(c.rec, lomega, lambda)
}

// SynthesizeFairImplementation is the package-level
// SynthesizeFairImplementation with the Checker's options applied.
func (c *Checker) SynthesizeFairImplementation(sys *System, f *Formula) (*FairImplementation, error) {
	return core.SynthesizeFairImplementationRec(c.rec, sys, core.FromFormula(f, nil))
}

// VerifyViaAbstraction is the package-level VerifyViaAbstraction with
// the Checker's options applied.
func (c *Checker) VerifyViaAbstraction(sys *System, h *Hom, eta *Formula) (*AbstractionReport, error) {
	return core.VerifyViaAbstractionRec(c.rec, sys, h, eta)
}

// CheckFairAbstract is the package-level CheckFairAbstract with the
// Checker's options applied. The verdict and report are identical under
// every kernel choice.
func (c *Checker) CheckFairAbstract(sys *System, h *Hom, kind FairnessKind, eta *Formula) (*FairAbstractReport, error) {
	p := core.FromFormula(eta, ltl.Canonical(h.Dest()))
	if c.kernSet || c.simCapSet {
		return core.CheckFairAbstractCtx(c.kernelCtx(nil), c.rec, sys, h, kind, p)
	}
	return core.CheckFairAbstractRec(c.rec, sys, h, kind, p)
}
