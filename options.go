package relive

import (
	"io"

	"relive/internal/core"
	"relive/internal/obs"
)

// Observability re-exports. A Recorder receives spans (nested phase
// timers), counters, and gauges from every decision procedure; Trace is
// the in-memory implementation whose dump powers the CLIs' -stats and
// -trace-json flags. See docs/OBSERVABILITY.md for the span naming
// convention (operations are "<package>.<Op>", lemma/theorem steps use
// the paper's notation and carry a "paper" tag).
type (
	// Recorder receives spans, counters, and gauges; nil means off and
	// costs one nil check per instrumentation point.
	Recorder = obs.Recorder
	// Trace is the in-memory Recorder; safe for concurrent use.
	Trace = obs.Trace
	// TraceDump is the serializable snapshot of a Trace.
	TraceDump = obs.Dump
	// SpanRecord is one recorded phase with duration, automaton sizes,
	// and paper tags.
	SpanRecord = obs.SpanRecord
)

// NewTrace returns an empty in-memory trace recorder.
func NewTrace() *Trace { return obs.NewTrace() }

// ReadTraceJSON parses a dump written by (*Trace).WriteJSON.
func ReadTraceJSON(r io.Reader) (TraceDump, error) { return obs.ReadJSON(r) }

// Checker runs the decision procedures with options attached — today a
// Recorder; the zero value (or With() with no options) behaves exactly
// like the package-level functions.
type Checker struct {
	rec Recorder
}

// Option configures a Checker.
type Option func(*Checker)

// WithRecorder attaches a recorder so every phase of every check run
// through the returned Checker reports spans and metrics to it.
func WithRecorder(rec Recorder) Option {
	return func(c *Checker) { c.rec = rec }
}

// With returns a Checker carrying the given options. Existing
// package-level entry points are unchanged; this is the additive way to
// attach observability:
//
//	tr := relive.NewTrace()
//	res, err := relive.With(relive.WithRecorder(tr)).CheckRelativeLiveness(sys, f)
//	tr.WriteTree(os.Stderr)
func With(opts ...Option) *Checker {
	c := &Checker{}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Recorder returns the attached recorder (nil when none).
func (c *Checker) Recorder() Recorder { return c.rec }

// CheckRelativeLiveness is the package-level CheckRelativeLiveness with
// the Checker's options applied.
func (c *Checker) CheckRelativeLiveness(sys *System, f *Formula) (LivenessResult, error) {
	return core.RelativeLivenessRec(c.rec, sys, core.FromFormula(f, nil))
}

// CheckRelativeLivenessProperty is CheckRelativeLiveness for a Property.
func (c *Checker) CheckRelativeLivenessProperty(sys *System, p Property) (LivenessResult, error) {
	return core.RelativeLivenessRec(c.rec, sys, p)
}

// CheckRelativeSafety is the package-level CheckRelativeSafety with the
// Checker's options applied.
func (c *Checker) CheckRelativeSafety(sys *System, f *Formula) (SafetyResult, error) {
	return core.RelativeSafetyRec(c.rec, sys, core.FromFormula(f, nil))
}

// CheckRelativeSafetyProperty is CheckRelativeSafety for a Property.
func (c *Checker) CheckRelativeSafetyProperty(sys *System, p Property) (SafetyResult, error) {
	return core.RelativeSafetyRec(c.rec, sys, p)
}

// CheckSatisfies is the package-level CheckSatisfies with the Checker's
// options applied.
func (c *Checker) CheckSatisfies(sys *System, f *Formula) (SatisfactionResult, error) {
	return core.SatisfiesRec(c.rec, sys, core.FromFormula(f, nil))
}

// CheckSatisfiesProperty is CheckSatisfies for a Property.
func (c *Checker) CheckSatisfiesProperty(sys *System, p Property) (SatisfactionResult, error) {
	return core.SatisfiesRec(c.rec, sys, p)
}

// CheckAll is the package-level CheckAll with the Checker's options
// applied.
func (c *Checker) CheckAll(sys *System, f *Formula) (*Report, error) {
	return core.CheckAllRec(c.rec, sys, core.FromFormula(f, nil))
}

// CheckAllProperty is CheckAll for a Property.
func (c *Checker) CheckAllProperty(sys *System, p Property) (*Report, error) {
	return core.CheckAllRec(c.rec, sys, p)
}

// MachineClosed is the package-level MachineClosed with the Checker's
// options applied.
func (c *Checker) MachineClosed(lomega, lambda *Buchi) (MachineClosureResult, error) {
	return core.MachineClosedRec(c.rec, lomega, lambda)
}

// SynthesizeFairImplementation is the package-level
// SynthesizeFairImplementation with the Checker's options applied.
func (c *Checker) SynthesizeFairImplementation(sys *System, f *Formula) (*FairImplementation, error) {
	return core.SynthesizeFairImplementationRec(c.rec, sys, core.FromFormula(f, nil))
}

// VerifyViaAbstraction is the package-level VerifyViaAbstraction with
// the Checker's options applied.
func (c *Checker) VerifyViaAbstraction(sys *System, h *Hom, eta *Formula) (*AbstractionReport, error) {
	return core.VerifyViaAbstractionRec(c.rec, sys, h, eta)
}
