package relive_test

import (
	"encoding/json"
	"testing"

	"relive"
)

func TestCheckAllReport(t *testing.T) {
	sys, err := relive.ParseSystemString(serverText)
	if err != nil {
		t.Fatal(err)
	}
	report, err := relive.CheckAll(sys, relive.MustParseLTL("G F result"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Satisfied || !report.RelativeLiveness || report.RelativeSafety {
		t.Errorf("verdicts: sat=%v rl=%v rs=%v", report.Satisfied, report.RelativeLiveness, report.RelativeSafety)
	}
	if len(report.CounterexampleLp) == 0 {
		t.Error("missing counterexample loop")
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back relive.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.RelativeLiveness != report.RelativeLiveness {
		t.Error("JSON round-trip lost data")
	}
}

func TestReduceSystem(t *testing.T) {
	sys, err := relive.ParseSystemString(`
init s0
s0 request l
s0 request r
l result s0
r result s0
`)
	if err != nil {
		t.Fatal(err)
	}
	small, err := relive.ReduceSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumStates() != 2 {
		t.Errorf("reduced to %d states, want 2", small.NumStates())
	}
	// Verdicts unchanged.
	for _, f := range []string{"G F result", "G F request"} {
		r1, err := relive.CheckRelativeLiveness(sys, relive.MustParseLTL(f))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := relive.CheckRelativeLiveness(small, relive.MustParseLTL(f))
		if err != nil {
			t.Fatal(err)
		}
		if r1.Holds != r2.Holds {
			t.Errorf("reduction changed verdict of %q", f)
		}
	}
}

func TestParseRegexFacade(t *testing.T) {
	ab := relive.NewAlphabet()
	a, err := relive.ParseRegex(ab, "(request (result | reject)) *")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.IsPrefixClosed(); !ok {
		t.Error("ParseRegex result not prefix-closed")
	}
	if _, err := relive.ParseRegex(ab, "("); err == nil {
		t.Error("bad regex accepted")
	}
}

func TestSimplifyAndEquivalent(t *testing.T) {
	ab := relive.NewAlphabet("a", "b")
	f := relive.MustParseLTL("F F a")
	s := relive.SimplifyLTL(f)
	if s.String() != "true U a" {
		t.Errorf("SimplifyLTL(FFa) = %s", s)
	}
	if eq, err := relive.EquivalentLTL(f, s, ab); err != nil || !eq {
		t.Errorf("simplified formula not equivalent (eq=%v, err=%v)", eq, err)
	}
	if eq, err := relive.EquivalentLTL(relive.MustParseLTL("F a"), relive.MustParseLTL("G a"), ab); err != nil || eq {
		t.Errorf("Fa and Ga reported equivalent (eq=%v, err=%v)", eq, err)
	}
	if _, err := relive.EquivalentLTL(nil, f, ab); err == nil {
		t.Error("EquivalentLTL(nil, f) did not error")
	}
	if _, err := relive.EquivalentLTL(f, s, nil); err == nil {
		t.Error("EquivalentLTL with nil alphabet did not error")
	}
}

func TestRandomWalkerFacade(t *testing.T) {
	sys, err := relive.ParseSystemString(serverText)
	if err != nil {
		t.Fatal(err)
	}
	w, err := relive.NewRandomWalker(sys, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Walk(25)); got != 25 {
		t.Errorf("walk length %d", got)
	}
}

func TestOmegaLanguageFacade(t *testing.T) {
	ab := relive.NewAlphabet("a", "b")
	lomega, err := relive.ParseOmegaRegex(ab, "( a | b ) * ( a ) ^w") // eventually only a
	if err != nil {
		t.Fatal(err)
	}
	closed, _, err := relive.IsLimitClosed(lomega)
	if err != nil {
		t.Fatal(err)
	}
	if closed {
		t.Error("FG-a language reported limit closed")
	}
	p := relive.PropertyFromLTL(relive.MustParseLTL("G F a"), relive.CanonicalLabeling(ab))
	rl, err := relive.CheckRelativeLivenessOmega(lomega, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rl.Holds {
		t.Error("□◇a should be (trivially) relative liveness of eventually-only-a")
	}
	rs, err := relive.CheckRelativeSafetyOmega(lomega, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Holds {
		t.Error("□◇a should be relative safety of eventually-only-a (all members satisfy it)")
	}
}
