// Benchmarks for the parallel decision procedures: concurrent CheckAll,
// property-portfolio batching, and frontier-parallel graph
// construction, each against its serial twin so `scripts/benchcmp` can
// show the parallel/serial ratio directly. On a single-core runner
// (GOMAXPROCS=1) the parallel variants measure coordination overhead
// rather than speedup; see BENCH_03.json for the methodology notes.
package relive_test

import (
	"fmt"
	"testing"

	"relive"
	"relive/internal/core"
	"relive/internal/paper"
	"relive/internal/petri"
	"relive/internal/ts"
)

func checkAllOperands(b *testing.B) (*ts.System, core.Property) {
	b.Helper()
	sys, err := paper.Fig2System()
	if err != nil {
		b.Fatal(err)
	}
	return sys, core.FromFormula(paper.PropertyInfResults(), nil)
}

func BenchmarkCheckAllSerial(b *testing.B) {
	sys, p := checkAllOperands(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckAll(sys, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckAllParallel(b *testing.B) {
	sys, p := checkAllOperands(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckAllPar(sys, p, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func portfolioOperands(b *testing.B) (*ts.System, []core.Property) {
	b.Helper()
	sys, err := paper.Fig2System()
	if err != nil {
		b.Fatal(err)
	}
	props := []core.Property{
		core.FromFormula(paper.PropertyInfResults(), nil),
		core.FromFormula(relive.MustParseLTL("G F request"), nil),
		core.FromFormula(relive.MustParseLTL("G (request -> F (result | reject))"), nil),
		core.FromFormula(relive.MustParseLTL("F G reject"), nil),
	}
	return sys, props
}

func BenchmarkPortfolioSerial(b *testing.B) {
	sys, props := portfolioOperands(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckPortfolio(sys, props, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPortfolioParallel(b *testing.B) {
	sys, props := portfolioOperands(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckPortfolio(sys, props, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRing is a bounded token-ring net whose reachability graph is
// large enough for the frontier phases to matter.
func benchRing(tokens int) *petri.Net {
	n := petri.New()
	n.AddPlace("p0", tokens)
	n.AddPlace("p1", 0)
	n.AddPlace("p2", 0)
	n.AddPlace("p3", 0)
	move := func(name, from, to string) {
		n.AddTransition(name, map[string]int{from: 1}, map[string]int{to: 1})
	}
	move("t01", "p0", "p1")
	move("t12", "p1", "p2")
	move("t23", "p2", "p3")
	move("t30", "p3", "p0")
	move("t02", "p0", "p2")
	move("t13", "p1", "p3")
	return n
}

func BenchmarkReachabilitySerial(b *testing.B) {
	net := benchRing(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.ReachabilityGraph(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachabilityParallel(b *testing.B) {
	net := benchRing(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.ReachabilityGraphParallel(0, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func productOperand(b *testing.B, i int) *relive.System {
	b.Helper()
	sys, err := relive.ParseSystemString(fmt.Sprintf(`
init idle%[1]d
idle%[1]d req%[1]d busy%[1]d
busy%[1]d work%[1]d done%[1]d
done%[1]d res%[1]d idle%[1]d
`, i))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkProductSerial(b *testing.B) {
	x, y, z := productOperand(b, 0), productOperand(b, 1), productOperand(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xy, err := relive.ProductSystem(x, y)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := relive.ProductSystem(xy, z); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProductParallel(b *testing.B) {
	x, y, z := productOperand(b, 0), productOperand(b, 1), productOperand(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xy, err := relive.ProductSystemParallel(x, y, 4)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := relive.ProductSystemParallel(xy, z, 4); err != nil {
			b.Fatal(err)
		}
	}
}
