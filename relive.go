package relive

import (
	"fmt"
	"io"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/core"
	"relive/internal/fairness"
	"relive/internal/hom"
	"relive/internal/ltl"
	"relive/internal/nfa"
	"relive/internal/petri"
	"relive/internal/rex"
	"relive/internal/ts"
	"relive/internal/word"
)

// Re-exported model types. The aliases deliberately expose the internal
// implementations: they are the supported API, reachable only through
// this package.
type (
	// Alphabet is a finite set of interned action symbols.
	Alphabet = alphabet.Alphabet
	// Symbol is an interned action letter; the zero value is ε.
	Symbol = alphabet.Symbol
	// Word is a finite action sequence.
	Word = word.Word
	// Lasso is an ultimately periodic ω-word u·v^ω.
	Lasso = word.Lasso
	// System is a finite-state transition system without acceptance;
	// its behaviors are lim(L) of its prefix-closed path language.
	System = ts.System
	// Edge is a labeled transition of a System.
	Edge = ts.Edge
	// Formula is a PLTL formula (Section 3 of the paper).
	Formula = ltl.Formula
	// Labeling is a function λ : Σ → 2^AP interpreting formulas over
	// action alphabets.
	Labeling = ltl.Labeling
	// Buchi is a nondeterministic Büchi automaton.
	Buchi = buchi.Buchi
	// Hom is an abstracting homomorphism h : Σ → Σ' ∪ {ε}
	// (Definition 6.1).
	Hom = hom.Hom
	// Net is a place/transition Petri net.
	Net = petri.Net
	// Property is an ω-regular property, from a formula or an automaton.
	Property = core.Property
	// Run is an ultimately periodic run of a System.
	Run = fairness.Run

	// LivenessResult reports a relative-liveness verdict with a bad
	// prefix witness on failure.
	LivenessResult = core.LivenessResult
	// SafetyResult reports a relative-safety verdict with a violating
	// behavior on failure.
	SafetyResult = core.SafetyResult
	// SatisfactionResult reports a satisfaction verdict with a
	// counterexample behavior on failure.
	SatisfactionResult = core.SatisfactionResult
	// MachineClosureResult reports a machine-closure verdict
	// (Definition 4.6).
	MachineClosureResult = core.MachineClosureResult
	// FairImplementation is the Theorem 5.1 synthesis output.
	FairImplementation = core.FairImplementation
	// AbstractionReport is the outcome of abstraction-based
	// verification (Sections 6–8).
	AbstractionReport = core.AbstractionReport
	// Conclusion classifies what an abstraction-based check proved.
	Conclusion = core.Conclusion
	// FairnessKind selects a fairness notion for the fair checks.
	FairnessKind = fairness.Kind
	// FairAbstractReport is the outcome of a fairness-within-abstraction
	// check (CheckFairAbstract).
	FairAbstractReport = core.FairAbstractReport
)

// Fairness notions.
const (
	// FairnessStrong: transitions enabled infinitely often are taken
	// infinitely often.
	FairnessStrong = fairness.Strong
	// FairnessWeak: transitions continuously enabled are taken
	// infinitely often.
	FairnessWeak = fairness.Weak
)

// Abstraction conclusions (Corollary 8.4).
const (
	// ConcreteHolds: abstract check passed under a simple homomorphism.
	ConcreteHolds = core.ConcreteHolds
	// ConcreteFails: abstract check failed; Theorem 8.3 refutes the
	// concrete system.
	ConcreteFails = core.ConcreteFails
	// Inconclusive: abstract check passed but the homomorphism is not
	// simple.
	Inconclusive = core.Inconclusive
)

// Epsilon is the reserved empty-word symbol.
const Epsilon = alphabet.Epsilon

// NewAlphabet returns an alphabet containing the given letters.
func NewAlphabet(names ...string) *Alphabet { return alphabet.FromNames(names...) }

// NewSystem returns an empty transition system over ab.
func NewSystem(ab *Alphabet) *System { return ts.New(ab) }

// ParseSystem reads a system from the text format:
//
//	init <state>
//	<from> <action> <to>
func ParseSystem(r io.Reader) (*System, error) { return ts.Parse(r) }

// ParseSystemString is ParseSystem on a string.
func ParseSystemString(text string) (*System, error) { return ts.ParseString(text) }

// NewNet returns an empty Petri net; use its reachability graph as a
// System (the paper's Figure 1 → Figure 2 step).
func NewNet() *Net { return petri.New() }

// ParseLTL parses a PLTL formula; both ASCII (G F result) and the
// paper's Unicode (□◇result) syntax are accepted.
func ParseLTL(text string) (*Formula, error) { return ltl.Parse(text) }

// MustParseLTL is ParseLTL panicking on error, for constant formulas.
func MustParseLTL(text string) *Formula { return ltl.MustParse(text) }

// CanonicalLabeling returns λ_Σ, interpreting each action name as the
// proposition holding exactly at that action (Definition 7.2).
func CanonicalLabeling(ab *Alphabet) *Labeling { return ltl.Canonical(ab) }

// NewHom returns an abstracting homomorphism between two alphabets;
// unmapped letters are hidden.
func NewHom(src, dst *Alphabet) *Hom { return hom.New(src, dst) }

// ParseHom parses "a=>x, b=>" mapping lists over src; empty targets
// hide letters.
func ParseHom(src *Alphabet, spec string) (*Hom, error) { return hom.Parse(src, spec) }

// ObserveActions returns the homomorphism keeping exactly the named
// actions and hiding everything else — the Section 2 abstraction shape.
func ObserveActions(src *Alphabet, keep ...string) *Hom { return hom.Identity(src, keep...) }

// PropertyFromLTL wraps a formula (with optional labeling; nil means
// the canonical labeling of the checked system) as a Property.
func PropertyFromLTL(f *Formula, lab *Labeling) Property { return core.FromFormula(f, lab) }

// PropertyFromBuchi wraps a Büchi automaton as a Property.
func PropertyFromBuchi(b *Buchi) Property { return core.FromAutomaton(b) }

// CheckRelativeLiveness decides whether f (under the canonical
// labeling) is a relative liveness property of sys (Definition 4.1,
// via Lemma 4.3).
func CheckRelativeLiveness(sys *System, f *Formula) (LivenessResult, error) {
	return core.RelativeLiveness(sys, core.FromFormula(f, nil))
}

// CheckRelativeLivenessProperty is CheckRelativeLiveness for a general
// Property.
func CheckRelativeLivenessProperty(sys *System, p Property) (LivenessResult, error) {
	return core.RelativeLiveness(sys, p)
}

// CheckRelativeSafety decides whether f is a relative safety property
// of sys (Definition 4.2, via Lemma 4.4).
func CheckRelativeSafety(sys *System, f *Formula) (SafetyResult, error) {
	return core.RelativeSafety(sys, core.FromFormula(f, nil))
}

// CheckRelativeSafetyProperty is CheckRelativeSafety for a Property.
func CheckRelativeSafetyProperty(sys *System, p Property) (SafetyResult, error) {
	return core.RelativeSafety(sys, p)
}

// CheckSatisfies decides plain satisfaction L_ω ⊆ P. By Theorem 4.7 it
// agrees with the conjunction of the two relative checks.
func CheckSatisfies(sys *System, f *Formula) (SatisfactionResult, error) {
	return core.Satisfies(sys, core.FromFormula(f, nil))
}

// CheckSatisfiesProperty is CheckSatisfies for a Property.
func CheckSatisfiesProperty(sys *System, p Property) (SatisfactionResult, error) {
	return core.Satisfies(sys, p)
}

// CheckRelativeLivenessOmega decides relative liveness for an arbitrary
// ω-regular language given as a Büchi automaton — Definition 4.1 in the
// paper's full generality (system behaviors are the limit-closed special
// case).
func CheckRelativeLivenessOmega(lomega *Buchi, p Property) (LivenessResult, error) {
	return core.RelativeLivenessOmega(lomega, p)
}

// CheckRelativeSafetyOmega is the ω-language form of the relative-safety
// check.
func CheckRelativeSafetyOmega(lomega *Buchi, p Property) (SafetyResult, error) {
	return core.RelativeSafetyOmega(lomega, p)
}

// IsLimitClosed reports whether an ω-regular language is limit closed,
// the precondition of Theorem 5.1.
func IsLimitClosed(lomega *Buchi) (bool, Lasso, error) {
	return core.IsLimitClosed(lomega)
}

// MachineClosed decides Definition 4.6 for two Büchi automata.
func MachineClosed(lomega, lambda *Buchi) (MachineClosureResult, error) {
	return core.MachineClosed(lomega, lambda)
}

// SynthesizeFairImplementation runs the Theorem 5.1 construction: a
// system with the same behaviors whose strongly fair runs all satisfy
// the relative liveness property f.
func SynthesizeFairImplementation(sys *System, f *Formula) (*FairImplementation, error) {
	return core.SynthesizeFairImplementation(sys, core.FromFormula(f, nil))
}

// AllStronglyFairRunsSatisfy checks whether every strongly fair run of
// sys satisfies f, returning a violating fair run otherwise.
func AllStronglyFairRunsSatisfy(sys *System, f *Formula) (bool, *Run, error) {
	return core.AllStronglyFairRunsSatisfy(sys, core.FromFormula(f, nil))
}

// AllFairRunsSatisfy checks whether every kind-fair run of sys
// satisfies f, returning a violating fair run otherwise.
func AllFairRunsSatisfy(sys *System, f *Formula, kind FairnessKind) (bool, *Run, error) {
	return core.AllFairRunsSatisfy(sys, core.FromFormula(f, nil), kind)
}

// CheckFairAbstract decides whether all kind-fair runs of sys satisfy
// eta through h — the fairness-within-abstraction verdict combining
// the Theorem 5.1 fair-emptiness machinery with the Sections 6–8
// abstraction constructions. eta must be in Σ'-normal form over h's
// destination alphabet.
func CheckFairAbstract(sys *System, h *Hom, kind FairnessKind, eta *Formula) (*FairAbstractReport, error) {
	return core.CheckFairAbstract(sys, h, kind, core.FromFormula(eta, ltl.Canonical(h.Dest())))
}

// ParseFairnessKind parses "strong" or "weak".
func ParseFairnessKind(s string) (FairnessKind, error) { return core.ParseFairnessKind(s) }

// VerifyViaAbstraction runs the paper's abstraction method end to end:
// abstract sys under h, check that eta (in Σ'-normal form over h's
// destination alphabet) is a relative liveness property of the abstract
// behaviors, decide simplicity of h, and conclude per Corollary 8.4.
func VerifyViaAbstraction(sys *System, h *Hom, eta *Formula) (*AbstractionReport, error) {
	return core.VerifyViaAbstraction(sys, h, eta)
}

// Rbar transforms an abstract property η into R̄(η) for interpretation
// on the concrete system (Definition 7.4 / Figure 5).
func Rbar(eta *Formula) (*Formula, error) { return ltl.Rbar(eta) }

// ConcreteProperty returns R̄(η) under the canonical h-labeling
// λ_{hΣΣ'}, ready for a direct concrete check.
func ConcreteProperty(h *Hom, eta *Formula) (Property, error) {
	return core.ConcreteProperty(h, eta)
}

// EvalLasso evaluates a formula on an ultimately periodic word under a
// labeling — the direct PLTL semantics of Section 3.
func EvalLasso(f *Formula, l Lasso, lab *Labeling) (bool, error) {
	return ltl.EvalLasso(f, l, lab)
}

// ProductSystem composes two systems synchronously on shared actions,
// the compositional-analysis step of [22] in the paper.
func ProductSystem(a, b *System) (*System, error) { return ts.Product(a, b) }

// ProductSystemParallel is ProductSystem with frontier-parallel
// construction of the reachable pair space on the given number of
// workers. Unlike ProductSystem, its state numbering is deterministic
// across runs and worker counts; the composed behavior is the same.
func ProductSystemParallel(a, b *System, workers int) (*System, error) {
	return ts.ProductParallel(a, b, workers)
}

// NewFairScheduler returns a deterministic strongly fair scheduler for
// simulating sys.
func NewFairScheduler(sys *System) (*fairness.Scheduler, error) {
	return fairness.NewScheduler(sys)
}

// NewRandomWalker returns a uniform random scheduler for sampling sys —
// the estimator behind the probability-1 reading of relative liveness
// (paper Section 9).
func NewRandomWalker(sys *System, seed int64) (*fairness.RandomWalker, error) {
	return fairness.NewRandomWalker(sys, seed)
}

// Report bundles the satisfaction, relative-liveness and
// relative-safety verdicts; it marshals to JSON.
type Report = core.Report

// CheckAll runs all three checks of Section 4 and cross-validates
// Theorem 4.7.
func CheckAll(sys *System, f *Formula) (*Report, error) {
	return core.CheckAll(sys, core.FromFormula(f, nil))
}

// CheckAllProperty is CheckAll for a general Property.
func CheckAllProperty(sys *System, p Property) (*Report, error) {
	return core.CheckAll(sys, p)
}

// ReduceSystem returns the strong-bisimulation quotient of the system:
// fewer states, identical behaviors, identical verdicts.
func ReduceSystem(sys *System) (*System, error) {
	return sys.BisimulationQuotient()
}

// ParseRegex parses a regular expression over action names
// ("request (result | reject) *") and returns an automaton for the
// prefix closure of its language — the shape of system languages in the
// paper. Actions are interned into ab.
func ParseRegex(ab *Alphabet, text string) (*nfa.NFA, error) {
	e, err := rex.Parse(ab, text)
	if err != nil {
		return nil, err
	}
	return e.PrefixClosureNFA(), nil
}

// ParseOmegaRegex parses an ω-regular expression "U ( V ) ^w" and
// returns a Büchi automaton for U·V^ω, usable as a Property via
// PropertyFromBuchi.
func ParseOmegaRegex(ab *Alphabet, text string) (*Buchi, error) {
	o, err := rex.ParseOmega(ab, text)
	if err != nil {
		return nil, err
	}
	return o.Buchi()
}

// SimplifyLTL returns an equivalent, usually smaller formula in
// negation normal form.
func SimplifyLTL(f *Formula) *Formula { return ltl.Simplify(f) }

// EquivalentLTL reports whether two formulas agree on every ω-word over
// the alphabet under the canonical labeling. Malformed inputs — nil
// formulas or a nil alphabet, or internal translation failures on
// adversarial formulas — are reported as errors rather than panics, so
// the function is safe on unvalidated (e.g. fuzzer-generated) input.
func EquivalentLTL(f, g *Formula, ab *Alphabet) (eq bool, err error) {
	if f == nil || g == nil {
		return false, fmt.Errorf("relive: EquivalentLTL: nil formula")
	}
	if ab == nil {
		return false, fmt.Errorf("relive: EquivalentLTL: nil alphabet")
	}
	defer func() {
		if r := recover(); r != nil {
			eq, err = false, fmt.Errorf("relive: EquivalentLTL: %v", r)
		}
	}()
	return ltl.Equivalent(f, g, ltl.Canonical(ab)), nil
}
