package relive

import (
	"context"

	"relive/internal/core"
)

// Context-aware entry points. Each ...Ctx function or method decides
// exactly what its plain counterpart decides — identical verdicts and
// witnesses — but polls ctx cooperatively inside the expensive loops
// (trim fixpoint, Büchi products, subset-construction inclusion,
// emptiness search), so a deadline or cancellation stops the PSPACE
// work promptly. A cancelled check returns an error wrapping
// context.Canceled or context.DeadlineExceeded; test with errors.Is.
// Context errors are never conflated with verdict errors: a completed
// check with a negative verdict returns (result, nil), and a genuine
// verdict error is returned even when a concurrent sibling was torn
// down by the cancellation.

// CheckAllCtx is CheckAll with cooperative cancellation.
func CheckAllCtx(ctx context.Context, sys *System, f *Formula) (*Report, error) {
	return core.CheckAllCtx(ctx, nil, sys, core.FromFormula(f, nil), 1)
}

// CheckAllPropertyCtx is CheckAllProperty with cooperative cancellation.
func CheckAllPropertyCtx(ctx context.Context, sys *System, p Property) (*Report, error) {
	return core.CheckAllCtx(ctx, nil, sys, p, 1)
}

// CheckRelativeLivenessCtx is CheckRelativeLiveness with cooperative
// cancellation.
func CheckRelativeLivenessCtx(ctx context.Context, sys *System, f *Formula) (LivenessResult, error) {
	return core.RelativeLivenessCtx(ctx, nil, sys, core.FromFormula(f, nil))
}

// CheckRelativeSafetyCtx is CheckRelativeSafety with cooperative
// cancellation.
func CheckRelativeSafetyCtx(ctx context.Context, sys *System, f *Formula) (SafetyResult, error) {
	return core.RelativeSafetyCtx(ctx, nil, sys, core.FromFormula(f, nil))
}

// CheckSatisfiesCtx is CheckSatisfies with cooperative cancellation.
func CheckSatisfiesCtx(ctx context.Context, sys *System, f *Formula) (SatisfactionResult, error) {
	return core.SatisfiesCtx(ctx, nil, sys, core.FromFormula(f, nil))
}

// CheckAllCtx is the Checker's CheckAll with cooperative cancellation;
// under WithParallelism the three verdicts run concurrently and all
// poll the same context. Under WithStatisticalFallback a system over
// the state budget — or an exact run over the time budget — is
// answered by the sampling engine instead (the report's Statistical
// field marks such answers).
func (c *Checker) CheckAllCtx(ctx context.Context, sys *System, f *Formula) (*Report, error) {
	return c.CheckAllPropertyCtx(ctx, sys, core.FromFormula(f, nil))
}

// CheckAllPropertyCtx is CheckAllCtx for a Property.
func (c *Checker) CheckAllPropertyCtx(ctx context.Context, sys *System, p Property) (*Report, error) {
	if c.fbSet {
		return c.checkAllWithFallback(ctx, sys, p)
	}
	return core.CheckAllCtx(c.kernelCtx(ctx), c.rec, sys, p, c.par)
}

// CheckRelativeLivenessCtx is the Checker's CheckRelativeLiveness with
// cooperative cancellation.
func (c *Checker) CheckRelativeLivenessCtx(ctx context.Context, sys *System, f *Formula) (LivenessResult, error) {
	return core.RelativeLivenessCtx(c.kernelCtx(ctx), c.rec, sys, core.FromFormula(f, nil))
}

// CheckRelativeLivenessPropertyCtx is CheckRelativeLivenessCtx for a
// Property.
func (c *Checker) CheckRelativeLivenessPropertyCtx(ctx context.Context, sys *System, p Property) (LivenessResult, error) {
	return core.RelativeLivenessCtx(c.kernelCtx(ctx), c.rec, sys, p)
}

// CheckRelativeSafetyCtx is the Checker's CheckRelativeSafety with
// cooperative cancellation.
func (c *Checker) CheckRelativeSafetyCtx(ctx context.Context, sys *System, f *Formula) (SafetyResult, error) {
	return core.RelativeSafetyCtx(c.kernelCtx(ctx), c.rec, sys, core.FromFormula(f, nil))
}

// CheckRelativeSafetyPropertyCtx is CheckRelativeSafetyCtx for a
// Property.
func (c *Checker) CheckRelativeSafetyPropertyCtx(ctx context.Context, sys *System, p Property) (SafetyResult, error) {
	return core.RelativeSafetyCtx(c.kernelCtx(ctx), c.rec, sys, p)
}

// CheckSatisfiesCtx is the Checker's CheckSatisfies with cooperative
// cancellation.
func (c *Checker) CheckSatisfiesCtx(ctx context.Context, sys *System, f *Formula) (SatisfactionResult, error) {
	return core.SatisfiesCtx(c.kernelCtx(ctx), c.rec, sys, core.FromFormula(f, nil))
}

// CheckSatisfiesPropertyCtx is CheckSatisfiesCtx for a Property.
func (c *Checker) CheckSatisfiesPropertyCtx(ctx context.Context, sys *System, p Property) (SatisfactionResult, error) {
	return core.SatisfiesCtx(c.kernelCtx(ctx), c.rec, sys, p)
}

// CheckPropertyPortfolioCtx is CheckPropertyPortfolio with cooperative
// cancellation: running checks poll ctx and not-yet-started jobs are
// abandoned once it expires.
func (c *Checker) CheckPropertyPortfolioCtx(ctx context.Context, sys *System, props []Property) ([]*Report, error) {
	return core.CheckPortfolioCtx(c.kernelCtx(ctx), c.rec, sys, props, c.portfolioWorkers())
}

// CheckSystemsPortfolioCtx is CheckSystemsPortfolio with cooperative
// cancellation.
func (c *Checker) CheckSystemsPortfolioCtx(ctx context.Context, systems []*System, p Property) ([]*Report, error) {
	return core.CheckSystemsPortfolioCtx(c.kernelCtx(ctx), c.rec, systems, p, c.portfolioWorkers())
}
