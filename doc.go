// Package relive is a verification library for relative liveness
// properties and behavior abstraction, reproducing
//
//	U. Nitsche and P. Wolper, "Relative Liveness and Behavior
//	Abstraction (Extended Abstract)", PODC 1997.
//
// A property P ⊆ Σ^ω is a relative liveness property of a system with
// behaviors L_ω when every finite behavior prefix can be extended to an
// infinite behavior satisfying P (Definition 4.1) — the right abstract
// reading of "true under some fairness assumption". The package decides
// relative liveness and relative safety for finite-state systems and
// ω-regular properties (PSPACE-complete, Theorem 4.5), synthesizes fair
// implementations (Theorem 5.1), decides Ochsenschläger's simplicity of
// abstracting homomorphisms (Definition 6.3), and verifies relative
// liveness properties on behavior abstractions, soundly when the
// homomorphism is simple (Theorems 8.2/8.3, Corollary 8.4).
//
// # Quick start
//
//	sys, _ := relive.ParseSystem(`
//	    init idle
//	    idle request busy
//	    busy result idle
//	    busy reject idle
//	`)
//	prop := relive.MustParseLTL("G F result")
//	res, _ := relive.CheckRelativeLiveness(sys, prop)
//	fmt.Println(res.Holds) // true: some fair implementation satisfies it
//
// # Abstraction
//
//	h, _ := relive.ParseHom(sys.Alphabet(), "request=>request, result=>result, reject=>")
//	report, _ := relive.VerifyViaAbstraction(sys, h, relive.MustParseLTL("G F result"))
//	fmt.Println(report.Conclusion)
//
// The building blocks — finite automata, Büchi automata with rank-based
// complementation, a GPVW LTL-to-Büchi translation, Petri-net
// reachability, Streett-style fair-emptiness checking — live in
// internal packages; this package is the supported surface.
package relive
