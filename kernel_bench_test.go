package relive_test

import (
	"fmt"
	"testing"

	"relive/internal/alphabet"
	"relive/internal/buchi"
	"relive/internal/genbase"
	"relive/internal/kernel"
	"relive/internal/nfa"
)

// Adversarial benchmark families for the inclusion/universality
// kernels. The finite-word family is the classic "k-th symbol from the
// end" language: its NFA has O(k) states but every DFA needs 2^k, so
// the on-the-fly subset construction explores exponentially many state
// sets while the antichain kernel keeps only the ⊆-minimal ones. The
// Büchi family drives a one-state a^ω automaton against a
// nondeterministic right-hand side that requires at least one b: the
// eager route builds the whole rank-based complement up front, the lazy
// route finds the a^ω counterexample after touching a handful of
// complement configurations. Each benchmark runs as /kernel=subset and
// /kernel=antichain sub-benchmarks over the same instance, so the
// BENCH_*.json files record the head-to-head on identical inputs.

// kthFromEndNFA accepts words over ab whose k-th symbol from the end is
// sym: a k+1 state chain behind a guessing self-loop.
func kthFromEndNFA(ab *alphabet.Alphabet, k int, sym alphabet.Symbol) *nfa.NFA {
	a := nfa.New(ab)
	a.AddStates(k + 1)
	for _, s := range ab.Symbols() {
		a.AddTransition(0, s, 0)
	}
	a.AddTransition(0, sym, 1)
	for i := 1; i < k; i++ {
		for _, s := range ab.Symbols() {
			a.AddTransition(nfa.State(i), s, nfa.State(i+1))
		}
	}
	a.SetAccepting(nfa.State(k), true)
	a.SetInitial(0)
	return a
}

// kthTrapNFA accepts every word — the union of "k-th symbol from the
// end is s" over all s with "length < k" — but proving that universal
// via determinization takes 2^k state sets.
func kthTrapNFA(ab *alphabet.Alphabet, k int) *nfa.NFA {
	a := nfa.New(ab)
	// Short words: a chain of k all-accepting states.
	a.AddStates(k)
	for i := 0; i < k; i++ {
		a.SetAccepting(nfa.State(i), true)
	}
	for i := 0; i+1 < k; i++ {
		for _, s := range ab.Symbols() {
			a.AddTransition(nfa.State(i), s, nfa.State(i+1))
		}
	}
	a.SetInitial(0)
	// One k-th-from-end branch per alphabet symbol.
	for _, sym := range ab.Symbols() {
		base := a.NumStates()
		a.AddStates(k + 1)
		for _, s := range ab.Symbols() {
			a.AddTransition(nfa.State(base), s, nfa.State(base))
		}
		a.AddTransition(nfa.State(base), sym, nfa.State(base+1))
		for i := 1; i < k; i++ {
			for _, s := range ab.Symbols() {
				a.AddTransition(nfa.State(base+i), s, nfa.State(base+i+1))
			}
		}
		a.SetAccepting(nfa.State(base+k), true)
		a.SetInitial(nfa.State(base))
	}
	return a
}

// needsBBuchi is the Büchi right-hand side of the lazy-rank family: n
// chain states nondeterministically consumed by a's, an accepting sink
// reached only on a b. Its language is "at least one b", but the chain
// nondeterminism makes the rank-based complement enumerate rankings
// over ever-growing state sets.
func needsBBuchi(ab *alphabet.Alphabet, n int) *buchi.Buchi {
	syms := ab.Symbols()
	aSym, bSym := syms[0], syms[1]
	c := buchi.New(ab)
	for i := 0; i < n; i++ {
		c.AddState(false)
	}
	sink := c.AddState(true)
	for i := 0; i < n; i++ {
		c.AddTransition(buchi.State(i), aSym, buchi.State((i+1)%n))
		c.AddTransition(buchi.State(i), bSym, sink)
	}
	c.AddTransition(0, aSym, 0) // the guess that blows up determinization
	c.AddTransition(sink, aSym, sink)
	c.AddTransition(sink, bSym, sink)
	c.SetInitial(0)
	return c
}

// aOmega is the one-state Büchi automaton for a^ω.
func aOmega(ab *alphabet.Alphabet) *buchi.Buchi {
	a := buchi.New(ab)
	s := a.AddState(true)
	a.AddTransition(s, ab.Symbols()[0], s)
	a.SetInitial(s)
	return a
}

var kernelKinds = []kernel.Kind{kernel.Subset, kernel.Antichain}

func BenchmarkKthFromEndUniversality(b *testing.B) {
	ab := genbase.Letters(2)
	for _, k := range []int{8, 12, 16} {
		trap := kthTrapNFA(ab, k)
		for _, kind := range kernelKinds {
			b.Run(fmt.Sprintf("k=%d/kernel=%s", k, kind), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ok, _, err := nfa.UniversalKernelCtx(nil, kind, trap)
					if err != nil || !ok {
						b.Fatalf("universal=%v err=%v", ok, err)
					}
				}
			})
		}
	}
}

func BenchmarkKthFromEndInclusion(b *testing.B) {
	ab := genbase.Letters(2)
	for _, k := range []int{8, 12, 16} {
		left := kthFromEndNFA(ab, k, ab.Symbols()[0])
		trap := kthTrapNFA(ab, k)
		for _, kind := range kernelKinds {
			b.Run(fmt.Sprintf("k=%d/kernel=%s", k, kind), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ok, _, err := nfa.IncludedKernelCtx(nil, kind, left, trap)
					if err != nil || !ok {
						b.Fatalf("included=%v err=%v", ok, err)
					}
				}
			})
		}
	}
}

func BenchmarkLazyRankInclusion(b *testing.B) {
	ab := genbase.Letters(2)
	for _, n := range []int{2, 3} {
		left := aOmega(ab)
		right := needsBBuchi(ab, n)
		for _, kind := range kernelKinds {
			b.Run(fmt.Sprintf("n=%d/kernel=%s", n, kind), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ok, l, err := buchi.IncludedKernelCtx(nil, kind, left, right)
					if err != nil {
						b.Fatal(err)
					}
					if ok || len(l.Loop) == 0 {
						b.Fatalf("inclusion unexpectedly holds (lasso %v)", l)
					}
				}
			})
		}
	}
}

// TestKernelAgreementAdversarial is the dual-kernel gate CI runs on the
// adversarial corpus: both kernels must return the same verdict on
// every instance, and every counterexample must be a genuine member of
// the witness language. Benchmarks measure; this fails the build on
// divergence.
func TestKernelAgreementAdversarial(t *testing.T) {
	ab := genbase.Letters(2)
	for _, k := range []int{2, 4, 6, 8, 10} {
		trap := kthTrapNFA(ab, k)
		left := kthFromEndNFA(ab, k, ab.Symbols()[0])
		// Universality of the trap automaton, and with one branch's
		// accepting state cut so it stops being universal.
		for _, mutate := range []bool{false, true} {
			n := trap
			if mutate {
				n = trap.Clone()
				n.SetAccepting(nfa.State(n.NumStates()-1), false)
			}
			uniS, wS, err := nfa.UniversalKernelCtx(nil, kernel.Subset, n)
			if err != nil {
				t.Fatal(err)
			}
			uniA, wA, err := nfa.UniversalKernelCtx(nil, kernel.Antichain, n)
			if err != nil {
				t.Fatal(err)
			}
			if uniS != uniA {
				t.Fatalf("k=%d mutate=%v: universality divergence: subset=%v antichain=%v", k, mutate, uniS, uniA)
			}
			if !uniA && (n.Accepts(wA) || n.Accepts(wS)) {
				t.Fatalf("k=%d mutate=%v: counterexample accepted by the automaton", k, mutate)
			}
		}
		// Inclusion left ⊆ trap (holds) and trap ⊆ left (fails).
		for _, pair := range [][2]*nfa.NFA{{left, trap}, {trap, left}} {
			okS, wS, err := nfa.IncludedKernelCtx(nil, kernel.Subset, pair[0], pair[1])
			if err != nil {
				t.Fatal(err)
			}
			okA, wA, err := nfa.IncludedKernelCtx(nil, kernel.Antichain, pair[0], pair[1])
			if err != nil {
				t.Fatal(err)
			}
			if okS != okA {
				t.Fatalf("k=%d: inclusion divergence: subset=%v antichain=%v", k, okS, okA)
			}
			if !okA {
				if len(wA) != len(wS) {
					t.Fatalf("k=%d: counterexample lengths diverge: subset %d, antichain %d", k, len(wS), len(wA))
				}
				if !pair[0].Accepts(wA) || pair[1].Accepts(wA) {
					t.Fatalf("k=%d: antichain counterexample not in L(a)\\L(b)", k)
				}
			}
		}
	}
	for _, n := range []int{2, 3} {
		left := aOmega(ab)
		right := needsBBuchi(ab, n)
		okE, lE, errE := buchi.IncludedKernelCtx(nil, kernel.Subset, left, right)
		okL, lL, errL := buchi.IncludedKernelCtx(nil, kernel.Antichain, left, right)
		if (errE == nil) != (errL == nil) {
			t.Fatalf("n=%d: error divergence: eager %v, lazy %v", n, errE, errL)
		}
		if errE != nil {
			continue
		}
		if okE != okL {
			t.Fatalf("n=%d: Büchi inclusion divergence: eager=%v lazy=%v", n, okE, okL)
		}
		if !okL {
			if !left.AcceptsLasso(lL) || right.AcceptsLasso(lL) {
				t.Fatalf("n=%d: lazy lasso not in L(a)\\L(c)", n)
			}
			if !left.AcceptsLasso(lE) || right.AcceptsLasso(lE) {
				t.Fatalf("n=%d: eager lasso not in L(a)\\L(c)", n)
			}
		}
	}
}
