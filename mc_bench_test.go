// Benchmarks for the statistical relative-liveness engine (internal/mc
// via relive.CheckStatistical): sampling cost against system size and
// budget, worker scaling, and the sampled-vs-exact crossover that
// motivates WithStatisticalFallback — on large products the exact
// Büchi pipeline pays for the whole state space while the sampler pays
// only for the walked fraction.
package relive_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"relive"
	"relive/internal/core"
	"relive/internal/gen"
	"relive/internal/mc"
	"relive/internal/ts"
)

// statBenchSystem renders an n-state strongly connected system in the
// shape of the e2e harness's big fixture: three actions, every state on
// a ring with two extra chords, so the whole graph is one bottom SCC.
func statBenchSystem(n int) *ts.System {
	var b strings.Builder
	b.WriteString("init s0\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "s%d a s%d\n", i, (i+1)%n)
		fmt.Fprintf(&b, "s%d b s%d\n", i, (2*i+1)%n)
		fmt.Fprintf(&b, "s%d c s0\n", i)
	}
	sys, err := ts.ParseString(b.String())
	if err != nil {
		panic(err)
	}
	return sys
}

// BenchmarkStatisticalVsExact: the sampled check against the exact
// strong-fairness check on growing systems — the crossover the
// statistical fallback exploits. The sampling budget is fixed, so its
// cost grows only with the walk length while the exact check pays for
// the full product.
func BenchmarkStatisticalVsExact(b *testing.B) {
	phi, err := relive.ParseLTL("G F a")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{64, 256, 1024} {
		sys := statBenchSystem(n)
		p := core.FromFormula(phi, nil)
		b.Run(fmt.Sprintf("n=%d/sampled", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := core.CheckStatistical(sys, p,
					core.StatOptions{Seed: 1, Samples: 100, Steps: 128, Workers: 1})
				if err != nil || rep.Verdict == core.StatVerdictFails {
					b.Fatalf("verdict %v, %v", rep.Verdict, err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/exact", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				holds, _, err := relive.AllFairRunsSatisfy(sys, phi, relive.FairnessStrong)
				if err != nil || !holds {
					b.Fatalf("verdict %v, %v", holds, err)
				}
			}
		})
	}
}

// BenchmarkStatisticalBudget: cost is linear in the sampling budget at
// a fixed system size.
func BenchmarkStatisticalBudget(b *testing.B) {
	sys := statBenchSystem(256)
	phi, err := relive.ParseLTL("G F a")
	if err != nil {
		b.Fatal(err)
	}
	p := core.FromFormula(phi, nil)
	for _, samples := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.CheckStatistical(sys, p,
					core.StatOptions{Seed: 1, Samples: samples, Steps: 128, Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStatisticalWorkers: worker scaling of one sampling sweep;
// the report is identical at every width, only the wall clock moves.
func BenchmarkStatisticalWorkers(b *testing.B) {
	sys := statBenchSystem(512)
	phi, err := relive.ParseLTL("G F a")
	if err != nil {
		b.Fatal(err)
	}
	p := core.FromFormula(phi, nil)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.CheckStatistical(sys, p,
					core.StatOptions{Seed: 1, Samples: 400, Steps: 256, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMCRunRandomGraphs: the raw engine on random sparse systems —
// the sampler's cost profile without property evaluation (the eval is a
// trivial loop scan).
func BenchmarkMCRunRandomGraphs(b *testing.B) {
	ab := gen.Letters(3)
	var trimmed *ts.System
	for seed := int64(1); trimmed == nil; seed++ {
		if seed > 64 {
			b.Fatal("no generated system with infinite behavior in 64 seeds")
		}
		rng := rand.New(rand.NewSource(seed))
		sys := gen.System(rng, ab, 200, 0.25)
		if tr, err := sys.Trim(); err == nil {
			trimmed = tr
		}
	}
	tgt, err := mc.NewSystemTarget(trimmed)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Run(nil, tgt, mc.Config{Seed: 1, Samples: 200, Steps: 128, Confidence: 0.99, Workers: 1},
			func(l relive.Lasso) (bool, error) { return len(l.Loop) > 0, nil }); err != nil {
			b.Fatal(err)
		}
	}
}
