// Montecarlo: the paper's concluding outlook (Section 9) made
// executable. Relative liveness properties "informally say: almost all
// computations satisfy the property". Under a uniform random scheduler
// a finite-state system almost surely falls into a bottom strongly
// connected component and sweeps it fairly, so:
//
//   - a relative liveness property holds with probability 1 even though
//     adversarial schedules violate it (the correct server), and
//   - a property that is not relative liveness fails with probability 1
//     once the unrecoverable region absorbs the run (the broken server).
//
// The example estimates both probabilities by sampling and compares them
// against the exact relative-liveness verdicts.
package main

import (
	"fmt"
	"log"

	"relive"
	"relive/internal/fairness"
	"relive/internal/paper"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	correct, err := paper.Fig2System()
	if err != nil {
		return err
	}
	broken := paper.Fig3System()
	prop := relive.MustParseLTL("G F result")

	for _, tc := range []struct {
		name string
		sys  *relive.System
	}{
		{"correct server (Figure 2)", correct},
		{"broken server (Figure 3)", broken},
	} {
		rl, err := relive.CheckRelativeLiveness(tc.sys, prop)
		if err != nil {
			return err
		}
		lab := relive.CanonicalLabeling(tc.sys.Alphabet())
		freq, err := fairness.SatisfactionFrequency(tc.sys, 42, 300, 200,
			func(l relive.Lasso) (bool, error) {
				return relive.EvalLasso(prop, l, lab)
			})
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", tc.name)
		fmt.Printf("  relative liveness verdict:       %v\n", rl.Holds)
		fmt.Printf("  Monte Carlo P(□◇result):         %.3f  (300 runs × 200 steps)\n\n", freq)
	}
	fmt.Println("Relative liveness — an exact, qualitative check — predicts the")
	fmt.Println("probability-1 behavior of the randomized system, the connection")
	fmt.Println("the paper poses as future work in its conclusion.")
	return nil
}
