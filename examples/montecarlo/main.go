// Montecarlo: the paper's concluding outlook (Section 9) made
// executable. Relative liveness properties "informally say: almost all
// computations satisfy the property". Under a uniform random scheduler
// a finite-state system almost surely falls into a bottom strongly
// connected component and sweeps it fairly, so:
//
//   - a relative liveness property holds with probability 1 even though
//     adversarial schedules violate it (the correct server), and
//   - a property that is not relative liveness fails with probability 1
//     once the unrecoverable region absorbs the run (the broken server).
//
// The example runs the first-class statistical engine
// (relive.CheckStatistical, backed by internal/mc): parallel seeded
// random walks, streaming bottom-SCC lasso detection, and a
// Clopper–Pearson confidence interval on the satisfaction probability —
// compared against the exact relative-liveness verdicts.
package main

import (
	"fmt"
	"log"

	"relive"
	"relive/internal/paper"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	correct, err := paper.Fig2System()
	if err != nil {
		return err
	}
	broken := paper.Fig3System()
	prop := relive.MustParseLTL("G F result")

	checker := relive.With(
		relive.WithSeed(42),
		relive.WithSampleBudget(300, 200),
		relive.WithConfidence(0.99),
	)
	for _, tc := range []struct {
		name string
		sys  *relive.System
	}{
		{"correct server (Figure 2)", correct},
		{"broken server (Figure 3)", broken},
	} {
		rl, err := relive.CheckRelativeLiveness(tc.sys, prop)
		if err != nil {
			return err
		}
		rep, err := checker.CheckStatistical(tc.sys, prop)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", tc.name)
		fmt.Printf("  relative liveness verdict:       %v\n", rl.Holds)
		fmt.Printf("  statistical verdict:             %s  (%d/%d settled samples hit)\n",
			rep.Verdict, rep.Hits, rep.Settled)
		fmt.Printf("  P(□◇result) estimate:            %.3f in [%.3f, %.3f] at %.0f%% confidence\n",
			rep.Estimate, rep.CILow, rep.CIHigh, rep.Confidence*100)
		if len(rep.CounterexampleLoop) > 0 {
			fmt.Printf("  sampled counterexample loop:     %v\n", rep.CounterexampleLoop)
		}
		fmt.Println()
	}
	fmt.Println("Relative liveness — an exact, qualitative check — predicts the")
	fmt.Println("probability-1 behavior of the randomized system, the connection")
	fmt.Println("the paper poses as future work in its conclusion. The statistical")
	fmt.Println("verdict is CI-bounded, never exact; only its counterexamples are.")
	return nil
}
