// Philosophers: dining philosophers as a Petri net, analyzed with the
// paper's machinery. Each philosopher picks up both forks atomically
// (eat_i) and puts them back (done_i) — a safe net whose reachability
// graph is built exactly like the paper's Figure 1 → Figure 2 step.
//
// "Philosopher 0 eats infinitely often" (□◇eat0) fails outright — the
// neighbors can conspire to starve her — but it IS a relative liveness
// property: a fair scheduler feeds everyone. The example also abstracts
// the ring down to philosopher 0's actions alone and shows the hiding
// homomorphism is simple, so the abstract verdict certifies the
// concrete ring (Theorem 8.2) — on a state space that does not grow
// with the number of philosophers.
package main

import (
	"fmt"
	"log"

	"relive"
)

const philosophers = 4

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildRing(n int) (*relive.System, error) {
	net := relive.NewNet()
	for i := 0; i < n; i++ {
		net.AddPlace(fmt.Sprintf("fork%d", i), 1)
	}
	for i := 0; i < n; i++ {
		left := fmt.Sprintf("fork%d", i)
		right := fmt.Sprintf("fork%d", (i+1)%n)
		eating := fmt.Sprintf("eating%d", i)
		net.AddTransition(fmt.Sprintf("eat%d", i),
			map[string]int{left: 1, right: 1},
			map[string]int{eating: 1})
		net.AddTransition(fmt.Sprintf("done%d", i),
			map[string]int{eating: 1},
			map[string]int{left: 1, right: 1})
	}
	return net.ReachabilityGraph(4096)
}

func run() error {
	sys, err := buildRing(philosophers)
	if err != nil {
		return err
	}
	fmt.Printf("ring of %d philosophers: %d reachable markings\n",
		philosophers, sys.NumStates())

	prop := relive.MustParseLTL("G F eat0")
	sat, err := relive.CheckSatisfies(sys, prop)
	if err != nil {
		return err
	}
	fmt.Printf("□◇eat0 satisfied outright:       %v\n", sat.Holds)
	if !sat.Holds {
		fmt.Printf("  starvation schedule:           %s\n",
			sat.Counterexample.String(sys.Alphabet()))
	}
	rl, err := relive.CheckRelativeLiveness(sys, prop)
	if err != nil {
		return err
	}
	fmt.Printf("□◇eat0 relative liveness:        %v (a fair scheduler feeds her)\n\n", rl.Holds)

	// Abstract to philosopher 0's visible actions and verify there.
	h := relive.ObserveActions(sys.Alphabet(), "eat0", "done0")
	report, err := relive.VerifyViaAbstraction(sys, h, prop)
	if err != nil {
		return err
	}
	fmt.Printf("abstract system states:          %d (concrete: %d)\n",
		report.Abstract.NumStates(), sys.NumStates())
	fmt.Printf("hiding homomorphism simple:      %v\n", report.Simple)
	fmt.Printf("abstract □◇eat0 verdict:         %v\n", report.AbstractHolds)
	fmt.Printf("conclusion:                      %s\n\n", report.Conclusion)

	// Simulate fairly and count meals.
	sched, err := relive.NewFairScheduler(sys)
	if err != nil {
		return err
	}
	meals := make([]int, philosophers)
	for _, e := range sched.Trace(400) {
		name := sys.Alphabet().Name(e.Sym)
		var who int
		if n, _ := fmt.Sscanf(name, "eat%d", &who); n == 1 {
			meals[who]++
		}
	}
	fmt.Printf("meals under the fair scheduler over 400 steps: %v\n", meals)
	return nil
}
