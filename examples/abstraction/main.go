// Abstraction: the full Section 2 story of the paper. A server is
// modeled as a Petri net (Figure 1), its reachability graph is the
// behavior system (Figure 2), an abstracting homomorphism hides the
// internal actions (giving Figure 4), and the simplicity of the
// homomorphism (Definition 6.3) decides whether the abstract verdict
// transfers to the concrete system. The erroneous variant (Figure 3)
// abstracts to the same system but fails the simplicity check — the
// example that shows why simplicity cannot be dropped.
package main

import (
	"fmt"
	"log"

	"relive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	concrete, err := buildServerNet()
	if err != nil {
		return err
	}
	fmt.Printf("Figure 2 (reachability graph): %d states over %s\n",
		concrete.NumStates(), concrete.Alphabet())

	eta := relive.MustParseLTL("G F result")
	h := relive.ObserveActions(concrete.Alphabet(), "request", "result", "reject")

	report, err := relive.VerifyViaAbstraction(concrete, h, eta)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 4 (abstraction):        %d states\n", report.Abstract.NumStates())
	fmt.Printf("h simple on the correct server: %v\n", report.Simple)
	fmt.Printf("abstract □◇result verdict:      %v\n", report.AbstractHolds)
	fmt.Printf("R̄(□◇result):                    %s\n", report.Transformed)
	fmt.Printf("conclusion:                     %s\n\n", report.Conclusion)

	// The erroneous server: the resource can never be freed again, and
	// rejections are possible even when it is free — same abstraction,
	// different truth.
	broken, err := relive.ParseSystemString(`
init F.idle
F.idle request F.waiting
F.waiting yes F.granted
F.waiting no F.denied
F.granted result F.idle
F.denied reject F.idle
F.idle lock L.idle
F.waiting lock L.waiting
F.granted lock L.granted
F.denied lock L.denied
L.idle request L.waiting
L.waiting no L.denied
L.granted result L.idle
L.denied reject L.idle
`)
	if err != nil {
		return err
	}
	hBroken := relive.ObserveActions(broken.Alphabet(), "request", "result", "reject")
	reportBroken, err := relive.VerifyViaAbstraction(broken, hBroken, eta)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 3 (erroneous server):    %d states\n", broken.NumStates())
	fmt.Printf("same abstract system:           %d states, abstract verdict %v\n",
		reportBroken.Abstract.NumStates(), reportBroken.AbstractHolds)
	fmt.Printf("h simple on the broken server:  %v (witness: %s)\n",
		reportBroken.Simple, reportBroken.SimplicityWitness.String(broken.Alphabet()))
	fmt.Printf("conclusion:                     %s\n", reportBroken.Conclusion)

	// Confirm the caution was warranted: the concrete check fails.
	concreteProp, err := relive.ConcreteProperty(hBroken, eta)
	if err != nil {
		return err
	}
	direct, err := relive.CheckRelativeLivenessProperty(broken, concreteProp)
	if err != nil {
		return err
	}
	fmt.Printf("direct concrete check:          %v (prefix %s kills the property)\n",
		direct.Holds, direct.BadPrefix.String(broken.Alphabet()))
	return nil
}

// buildServerNet builds the Figure 1 Petri net and returns its
// reachability graph — the Figure 2 behavior system.
func buildServerNet() (*relive.System, error) {
	net := relive.NewNet()
	net.AddPlace("idle", 1)
	net.AddPlace("free", 1)
	net.AddTransition("request", map[string]int{"idle": 1}, map[string]int{"waiting": 1})
	net.AddTransition("yes", map[string]int{"waiting": 1, "free": 1}, map[string]int{"granted": 1, "free": 1})
	net.AddTransition("no", map[string]int{"waiting": 1, "locked": 1}, map[string]int{"denied": 1, "locked": 1})
	net.AddTransition("result", map[string]int{"granted": 1}, map[string]int{"idle": 1})
	net.AddTransition("reject", map[string]int{"denied": 1}, map[string]int{"idle": 1})
	net.AddTransition("lock", map[string]int{"free": 1}, map[string]int{"locked": 1})
	net.AddTransition("free", map[string]int{"locked": 1}, map[string]int{"free": 1})
	return net.ReachabilityGraph(64)
}
