// Quickstart: decide whether a property is a relative liveness property
// of a small server — i.e. whether some fair implementation satisfies
// it — and contrast that with plain satisfaction.
package main

import (
	"fmt"
	"log"

	"relive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A server that answers each request with a result or a rejection.
	sys, err := relive.ParseSystemString(`
init idle
idle request busy
busy result idle
busy reject idle
`)
	if err != nil {
		return err
	}
	prop := relive.MustParseLTL("G F result") // □◇result

	sat, err := relive.CheckSatisfies(sys, prop)
	if err != nil {
		return err
	}
	fmt.Printf("□◇result satisfied outright: %v\n", sat.Holds)
	if !sat.Holds {
		fmt.Printf("  counterexample behavior:   %s\n",
			sat.Counterexample.String(sys.Alphabet()))
	}

	rl, err := relive.CheckRelativeLiveness(sys, prop)
	if err != nil {
		return err
	}
	fmt.Printf("□◇result relative liveness:  %v\n", rl.Holds)
	if rl.Holds {
		fmt.Println("  → every finite behavior extends to one with infinitely many results;")
		fmt.Println("    a fair implementation will satisfy the property (Theorem 5.1).")
	}

	rs, err := relive.CheckRelativeSafety(sys, prop)
	if err != nil {
		return err
	}
	fmt.Printf("□◇result relative safety:    %v\n", rs.Holds)
	fmt.Println("  (Theorem 4.7: satisfied ⟺ relative liveness ∧ relative safety)")
	return nil
}
