// Compositional: the Section 9 motivation. For a farm of independent
// workers the concrete state space grows as 3^n, but the abstraction
// observing one worker is computable component-wise — abstract the one
// observed worker, ignore the hidden ones — and the relative liveness
// check runs on a constant-size abstract system. The simplicity of the
// hiding homomorphism (checked, not assumed) is what makes the abstract
// verdict transfer (Theorem 8.2).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"relive"
)

func main() {
	parallel := flag.Bool("parallel", false,
		"compose the farm with the frontier-parallel product and check every worker's response property as a portfolio")
	flag.Parse()
	if err := run(*parallel); err != nil {
		log.Fatal(err)
	}
}

func worker(i int) (*relive.System, error) {
	return relive.ParseSystemString(fmt.Sprintf(`
init idle%[1]d
idle%[1]d req%[1]d busy%[1]d
busy%[1]d work%[1]d done%[1]d
done%[1]d res%[1]d idle%[1]d
`, i))
}

func run(parallel bool) error {
	fmt.Println("n  concrete  abstract  simple  abstract-verdict  conclusion            time")
	for n := 1; n <= 5; n++ {
		farm, err := worker(0)
		if err != nil {
			return err
		}
		for i := 1; i < n; i++ {
			w, err := worker(i)
			if err != nil {
				return err
			}
			if parallel {
				farm, err = relive.ProductSystemParallel(farm, w, 0)
			} else {
				farm, err = relive.ProductSystem(farm, w)
			}
			if err != nil {
				return err
			}
		}
		h := relive.ObserveActions(farm.Alphabet(), "req0", "res0")
		eta := relive.MustParseLTL("G (req0 -> F res0)")
		start := time.Now()
		report, err := relive.VerifyViaAbstraction(farm, h, eta)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("%d  %8d  %8d  %-6v  %-16v  %-20s  %v\n",
			n, farm.NumStates(), report.Abstract.NumStates(),
			report.Simple, report.AbstractHolds, report.Conclusion, elapsed.Round(time.Microsecond))

		if parallel {
			// Check every worker's own response property against the
			// concrete farm as one portfolio batch: the pool shares the
			// trimmed farm and its behavior automaton across all n
			// properties.
			chk := relive.With(relive.WithParallelism(0))
			var props []relive.Property
			for i := 0; i < n; i++ {
				f := relive.MustParseLTL(fmt.Sprintf("G (req%d -> F res%d)", i, i))
				props = append(props, relive.PropertyFromLTL(f, nil))
			}
			pstart := time.Now()
			reports, err := chk.CheckPropertyPortfolio(farm, props)
			if err != nil {
				return err
			}
			holds := 0
			for _, r := range reports {
				if r.RelativeLiveness {
					holds++
				}
			}
			fmt.Printf("   portfolio: %d/%d per-worker response properties are relative liveness properties (%d workers, %v)\n",
				holds, n, chk.Parallelism(), time.Since(pstart).Round(time.Microsecond))
		}
	}
	fmt.Println()
	fmt.Println("The abstract system stays constant-size while the concrete product")
	fmt.Println("grows as 3^n; the conclusion for the concrete system is licensed by")
	fmt.Println("Theorem 8.2 because the hiding homomorphism is simple.")
	return nil
}
