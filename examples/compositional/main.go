// Compositional: the Section 9 motivation. For a farm of independent
// workers the concrete state space grows as 3^n, but the abstraction
// observing one worker is computable component-wise — abstract the one
// observed worker, ignore the hidden ones — and the relative liveness
// check runs on a constant-size abstract system. The simplicity of the
// hiding homomorphism (checked, not assumed) is what makes the abstract
// verdict transfer (Theorem 8.2).
package main

import (
	"fmt"
	"log"
	"time"

	"relive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func worker(i int) (*relive.System, error) {
	return relive.ParseSystemString(fmt.Sprintf(`
init idle%[1]d
idle%[1]d req%[1]d busy%[1]d
busy%[1]d work%[1]d done%[1]d
done%[1]d res%[1]d idle%[1]d
`, i))
}

func run() error {
	fmt.Println("n  concrete  abstract  simple  abstract-verdict  conclusion            time")
	for n := 1; n <= 5; n++ {
		farm, err := worker(0)
		if err != nil {
			return err
		}
		for i := 1; i < n; i++ {
			w, err := worker(i)
			if err != nil {
				return err
			}
			farm, err = relive.ProductSystem(farm, w)
			if err != nil {
				return err
			}
		}
		h := relive.ObserveActions(farm.Alphabet(), "req0", "res0")
		eta := relive.MustParseLTL("G (req0 -> F res0)")
		start := time.Now()
		report, err := relive.VerifyViaAbstraction(farm, h, eta)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		fmt.Printf("%d  %8d  %8d  %-6v  %-16v  %-20s  %v\n",
			n, farm.NumStates(), report.Abstract.NumStates(),
			report.Simple, report.AbstractHolds, report.Conclusion, elapsed.Round(time.Microsecond))
	}
	fmt.Println()
	fmt.Println("The abstract system stays constant-size while the concrete product")
	fmt.Println("grows as 3^n; the conclusion for the concrete system is licensed by")
	fmt.Println("Theorem 8.2 because the hiding homomorphism is simple.")
	return nil
}
