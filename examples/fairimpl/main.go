// Fairimpl: the Section 5 example. ◇(a ∧ ○a) — "eventually two a's in a
// row" — is a relative liveness property of {a,b}^ω, yet imposing
// strong fairness on the minimal one-state automaton does not make it
// true: fairness alone cannot remember that the previous action was an
// a. Theorem 5.1 adds exactly the missing state information: a reduced
// Büchi automaton for L_ω ∩ P with the acceptance dropped accepts the
// same behaviors, and all its strongly fair runs satisfy the property.
package main

import (
	"fmt"
	"log"

	"relive"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := relive.ParseSystemString(`
init q
q a q
q b q
`)
	if err != nil {
		return err
	}
	prop := relive.MustParseLTL("F (a & X a)") // ◇(a ∧ ○a)

	rl, err := relive.CheckRelativeLiveness(sys, prop)
	if err != nil {
		return err
	}
	fmt.Printf("◇(a ∧ ○a) relative liveness of {a,b}^ω: %v\n", rl.Holds)

	ok, bad, err := relive.AllStronglyFairRunsSatisfy(sys, prop)
	if err != nil {
		return err
	}
	fmt.Printf("strong fairness on the minimal automaton suffices: %v\n", ok)
	if bad != nil {
		fmt.Printf("  strongly fair violating run: %s\n", bad.Word().String(sys.Alphabet()))
	}

	fi, err := relive.SynthesizeFairImplementation(sys, prop)
	if err != nil {
		return err
	}
	fmt.Printf("\nTheorem 5.1 implementation: %d states (was %d)\n",
		fi.System.NumStates(), sys.NumStates())
	same, _, err := fi.SameBehaviors(sys)
	if err != nil {
		return err
	}
	fmt.Printf("accepts exactly {a,b}^ω: %v\n", same)
	implOK, _, err := fi.AllStronglyFairRunsSatisfy(relive.PropertyFromLTL(prop, nil))
	if err != nil {
		return err
	}
	fmt.Printf("all strongly fair runs satisfy ◇(a ∧ ○a): %v\n", implOK)

	// Simulate the implementation under a strongly fair scheduler and
	// watch the pattern appear.
	sched, err := relive.NewFairScheduler(fi.System)
	if err != nil {
		return err
	}
	trace := sched.Trace(20)
	fmt.Print("\nfair simulation of the implementation: ")
	prev := ""
	seenAt := -1
	for i, e := range trace {
		name := fi.System.Alphabet().Name(e.Sym)
		fmt.Print(name)
		if name == "a" && prev == "a" && seenAt < 0 {
			seenAt = i
		}
		prev = name
	}
	fmt.Println()
	if seenAt >= 0 {
		fmt.Printf("two consecutive a's first appear at step %d\n", seenAt)
	} else {
		fmt.Println("pattern not yet visible in 20 steps (longer traces will show it)")
	}
	return nil
}
