// Featureinteraction: an intelligent-network case study in the spirit
// of the paper's reference [6]. Two telephone features — call
// forwarding on busy and voice mail on busy — compete for the same
// trigger. With a sane arbitration the service guarantee "every call is
// eventually handled" is a relative liveness property (a fair switch
// delivers it); with a broken arbitration a forwarded call can bounce
// between two busy parties forever, the guarantee is not even a
// relative liveness property, and — crucially — the abstraction that
// hides internal signalling cannot be trusted, because the hiding
// homomorphism stops being simple.
package main

import (
	"flag"
	"fmt"
	"log"

	"relive"
)

const wellIntegrated = `
init idle
idle call ringing
ringing answer talking
talking hangup idle
ringing busy contended
contended forward diverted
contended voicemail recording
diverted fwdanswer talking
diverted bounce contended
recording record idle
`

const misintegrated = `
init idle
idle call ringing
ringing answer talking
talking hangup idle
ringing busy contended
contended forward diverted
contended voicemail recording
diverted fwdanswer talking
diverted bounce fwdonly
fwdonly forward fwdloop
fwdloop bounce fwdonly
recording record idle
`

func main() {
	parallel := flag.Bool("parallel", false,
		"check the per-variant property portfolio on a GOMAXPROCS worker pool (relive.WithParallelism)")
	flag.Parse()
	if err := run(*parallel); err != nil {
		log.Fatal(err)
	}
}

func run(parallel bool) error {
	eta := relive.MustParseLTL("G (call -> F (answer | fwdanswer | record))")
	for _, variant := range []struct {
		name string
		text string
	}{
		{"well-integrated switch", wellIntegrated},
		{"misintegrated switch", misintegrated},
	} {
		sys, err := relive.ParseSystemString(variant.text)
		if err != nil {
			return err
		}
		h := relive.ObserveActions(sys.Alphabet(), "call", "answer", "fwdanswer", "record")
		report, err := relive.VerifyViaAbstraction(sys, h, eta)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d states):\n", variant.name, sys.NumStates())
		fmt.Printf("  abstract \"every call handled\" verdict: %v\n", report.AbstractHolds)
		fmt.Printf("  hiding homomorphism simple:            %v\n", report.Simple)
		fmt.Printf("  conclusion:                            %s\n", report.Conclusion)

		// Ground truth at the concrete level.
		p, err := relive.ConcreteProperty(h, eta)
		if err != nil {
			return err
		}
		direct, err := relive.CheckRelativeLivenessProperty(sys, p)
		if err != nil {
			return err
		}
		fmt.Printf("  concrete ground truth:                 %v", direct.Holds)
		if !direct.Holds {
			fmt.Printf("  (stuck after %s)", direct.BadPrefix.String(sys.Alphabet()))
		}
		fmt.Println()

		if parallel {
			// Check a portfolio of service guarantees in one batch: the
			// worker pool shares the trimmed system and its behavior
			// automaton across all properties, and each property's three
			// verdicts come back exactly as a serial CheckAll would
			// report them.
			portfolio := []struct {
				name    string
				formula string
			}{
				{"every call handled", ""}, // the eta property, set below
				{"contention resolved", "G (busy -> F (forward | voicemail))"},
				{"forwarded calls answered", "G (forward -> F fwdanswer)"},
			}
			props := []relive.Property{p}
			for _, entry := range portfolio[1:] {
				props = append(props, relive.PropertyFromLTL(relive.MustParseLTL(entry.formula), nil))
			}
			chk := relive.With(relive.WithParallelism(0))
			reports, err := chk.CheckPropertyPortfolio(sys, props)
			if err != nil {
				return err
			}
			fmt.Printf("  portfolio (%d properties, %d workers):\n", len(props), chk.Parallelism())
			for i, r := range reports {
				fmt.Printf("    %-26s satisfied=%-5v rel-liveness=%-5v rel-safety=%v\n",
					portfolio[i].name, r.Satisfied, r.RelativeLiveness, r.RelativeSafety)
			}
		}
		fmt.Println()
	}
	fmt.Println("The misintegrated switch abstracts to the same observable behavior,")
	fmt.Println("but the simplicity check (Definition 6.3) flags the abstraction as")
	fmt.Println("unreliable — exactly the paper's Figure 2 vs Figure 3 phenomenon.")
	return nil
}
