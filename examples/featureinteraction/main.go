// Featureinteraction: an intelligent-network case study in the spirit
// of the paper's reference [6]. Two telephone features — call
// forwarding on busy and voice mail on busy — compete for the same
// trigger. With a sane arbitration the service guarantee "every call is
// eventually handled" is a relative liveness property (a fair switch
// delivers it); with a broken arbitration a forwarded call can bounce
// between two busy parties forever, the guarantee is not even a
// relative liveness property, and — crucially — the abstraction that
// hides internal signalling cannot be trusted, because the hiding
// homomorphism stops being simple.
package main

import (
	"fmt"
	"log"

	"relive"
)

const wellIntegrated = `
init idle
idle call ringing
ringing answer talking
talking hangup idle
ringing busy contended
contended forward diverted
contended voicemail recording
diverted fwdanswer talking
diverted bounce contended
recording record idle
`

const misintegrated = `
init idle
idle call ringing
ringing answer talking
talking hangup idle
ringing busy contended
contended forward diverted
contended voicemail recording
diverted fwdanswer talking
diverted bounce fwdonly
fwdonly forward fwdloop
fwdloop bounce fwdonly
recording record idle
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eta := relive.MustParseLTL("G (call -> F (answer | fwdanswer | record))")
	for _, variant := range []struct {
		name string
		text string
	}{
		{"well-integrated switch", wellIntegrated},
		{"misintegrated switch", misintegrated},
	} {
		sys, err := relive.ParseSystemString(variant.text)
		if err != nil {
			return err
		}
		h := relive.ObserveActions(sys.Alphabet(), "call", "answer", "fwdanswer", "record")
		report, err := relive.VerifyViaAbstraction(sys, h, eta)
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d states):\n", variant.name, sys.NumStates())
		fmt.Printf("  abstract \"every call handled\" verdict: %v\n", report.AbstractHolds)
		fmt.Printf("  hiding homomorphism simple:            %v\n", report.Simple)
		fmt.Printf("  conclusion:                            %s\n", report.Conclusion)

		// Ground truth at the concrete level.
		p, err := relive.ConcreteProperty(h, eta)
		if err != nil {
			return err
		}
		direct, err := relive.CheckRelativeLivenessProperty(sys, p)
		if err != nil {
			return err
		}
		fmt.Printf("  concrete ground truth:                 %v", direct.Holds)
		if !direct.Holds {
			fmt.Printf("  (stuck after %s)", direct.BadPrefix.String(sys.Alphabet()))
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("The misintegrated switch abstracts to the same observable behavior,")
	fmt.Println("but the simplicity check (Definition 6.3) flags the abstraction as")
	fmt.Println("unreliable — exactly the paper's Figure 2 vs Figure 3 phenomenon.")
	return nil
}
