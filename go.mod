module relive

go 1.22
